// Cell workload profiles.
//
// The paper evaluates on two sets of cells: the eight public-trace cells
// a..h (Section 5) and five production cells 1..5 (Section 3.3, Table 1).
// We cannot ship the real traces, so each cell is described by a parameter
// profile from which the generator synthesizes a workload that reproduces
// the *published distributional shapes*: task submission rates (Fig 4), task
// runtime CDFs (Fig 7a, e.g. cell c ~98% of tasks under 24 h vs cell g ~75%),
// usage-to-limit ratios with p95 <= ~0.9 (Fig 7c), and the per-cell workload
// character the paper comments on (cell b has the lowest per-machine
// utilization variance; production cells 2-3 run hot but stable, cell 5 is
// small and bursty, cell 4 has extreme task churn).
//
// Machine counts are the paper's counts divided by ~125 (the evaluation here
// is single-host); REPRO_SCALE scales them further.

#ifndef CRF_TRACE_CELL_PROFILE_H_
#define CRF_TRACE_CELL_PROFILE_H_

#include <string>
#include <vector>

#include "crf/util/time_grid.h"

namespace crf {

struct CellProfile {
  std::string name = "cell";
  int num_machines = 160;
  double machine_capacity = 1.0;

  // Steady-state resident tasks per machine; arrivals are driven by a
  // churn-plus-backfill controller that holds the population near this. With
  // the default limit distribution (mean ~0.06 of capacity) the default of 16
  // keeps machines allocated near their capacity in summed limits, like the
  // real trace.
  double tasks_per_machine = 14.0;
  // Fraction of the *initial* population that are continuously-running
  // services (they live for the whole trace).
  double service_fraction = 0.25;
  // Mean tasks per job (geometric); tasks of a job share limits and phase.
  double tasks_per_job_mean = 3.0;

  // Runtime mixture for non-service tasks: exponential "short" component and
  // a lognormal "long" tail.
  double short_runtime_mean_hours = 4.0;
  double long_fraction = 0.12;
  double long_runtime_log_mean = 3.2;   // log(hours)
  double long_runtime_log_sigma = 0.7;

  // Diurnal modulation of the arrival rate (Fig 4 spread).
  double arrival_diurnal_amplitude = 0.35;

  // Task limits: lognormal in machine-capacity units, clamped.
  double limit_log_mu = -2.9;
  double limit_log_sigma = 0.85;
  double limit_min = 0.01;
  double limit_max = 0.50;

  // Mean usage/limit ratio: Beta(alpha, beta). The defaults give mean ~0.48
  // so that, with diurnal + noise on top, the p95 usage-to-limit ratio lands
  // near 0.9 (Fig 7c / the borg-default phi=0.9 calibration).
  double mean_ratio_alpha = 2.6;
  double mean_ratio_beta = 2.8;

  // Diurnal usage wave amplitude range (per job) and phase structure: each
  // job's phase is cell_phase plus jitter; a larger jitter weakens cross-job
  // correlation and strengthens the pooling effect.
  double diurnal_amp_min = 0.15;
  double diurnal_amp_max = 0.50;
  double cell_phase_days = 0.30;
  double job_phase_jitter_days = 0.09;

  // AR(1) noise ranges (per job).
  double ar_rho_min = 0.70;
  double ar_rho_max = 0.95;
  double ar_sigma_min = 0.03;
  double ar_sigma_max = 0.10;

  // Spike episodes (toward the limit).
  double spike_prob = 0.005;
  double spike_level = 0.90;
  Interval spike_duration = 3;

  // Within-interval sub-sample jitter.
  double within_sigma = 0.08;

  // Cell-wide shared load factor (user traffic seen by every serving job):
  // 1 + amplitude*sin(daily) + AR(1)(rho, sigma). Serving jobs couple to it
  // with strength Beta(coupling_alpha, coupling_beta); batch jobs do not.
  double cell_load_amplitude = 0.22;
  double cell_load_rho = 0.97;
  double cell_load_sigma = 0.04;
  double coupling_alpha = 2.0;
  double coupling_beta = 1.5;
  // Rare cell-wide load bursts (flash crowds / retry storms): Poisson events
  // at `load_burst_rate` per interval multiply the shared factor by
  // exp(N(load_burst_log_magnitude, 0.15)) for `load_burst_duration`
  // intervals. Off by default; the production profiles enable them — they
  // are what turns an oracle violation into an actual resource shortage
  // (Fig 2 / Fig 3).
  double load_burst_rate = 0.0;
  double load_burst_log_magnitude = 0.45;
  Interval load_burst_duration = 2;

  // Persistent machine-level load imbalance: placement divides a machine's
  // allocation ratio by a static lognormal weight exp(N(0, sigma)), so some
  // machines run persistently fuller than others (the wide per-machine
  // utilization spread of Fig 3c). 0 = perfectly balanced placement.
  double machine_imbalance_sigma = 0.6;

  // Fraction of jobs in scheduling classes 2-3 (latency sensitive).
  double serving_fraction = 0.80;

  // The generator's placement packs machines up to this multiple of capacity
  // in summed limits (the public trace is itself overcommitted).
  double target_alloc_ratio = 1.20;
};

// Public-trace-like cells 'a'..'h' (Section 5, Figs 4, 7, 11).
CellProfile SimCellProfile(char letter);
std::vector<CellProfile> AllSimCellProfiles();

// Production-like cells 1..5 (Section 3.3, Table 1, Fig 3).
CellProfile ProductionCellProfile(int index);
std::vector<CellProfile> AllProductionCellProfiles();

}  // namespace crf

#endif  // CRF_TRACE_CELL_PROFILE_H_
