// Trace persistence.
//
// A simple line-oriented text format so generated traces can be cached,
// inspected, or fed to external tooling. Rich within-interval stats are not
// persisted (they are cheap to regenerate and 9x the size); LoadCellTrace
// returns a trace with empty TaskTrace::rich.
//
// Format (one record per line, comma-separated; series fields use ';'):
//   # crf-trace v1
//   cell,<name>,<num_intervals>,<num_machines>,<dropped_tasks>
//   machine,<index>,<capacity>,<true_peak[0];true_peak[1];...>
//   task,<task_id>,<job_id>,<machine>,<start>,<limit>,<class>,<u0;u1;...>

#ifndef CRF_TRACE_TRACE_IO_H_
#define CRF_TRACE_TRACE_IO_H_

#include <optional>
#include <string>

#include "crf/trace/trace.h"

namespace crf {

// Writes `cell` to `path`. Aborts on I/O error (paths are operator input).
void SaveCellTrace(const CellTrace& cell, const std::string& path);

// Loads a trace; returns nullopt if the file is missing or malformed.
std::optional<CellTrace> LoadCellTrace(const std::string& path);

}  // namespace crf

#endif  // CRF_TRACE_TRACE_IO_H_
