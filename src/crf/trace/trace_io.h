// Trace persistence: a text format and a zero-copy binary format.
//
// Text (v1) — line-oriented CSV so generated traces can be inspected or fed
// to external tooling. Rich within-interval stats are not persisted in text
// (they are cheap to regenerate and 9x the size); loading a text trace yields
// has_rich() == false.
//
//   # crf-trace v1
//   cell,<name>,<num_intervals>,<num_machines>,<dropped_tasks>
//   machine,<index>,<capacity>,<true_peak[0];true_peak[1];...>
//   task,<task_id>,<job_id>,<machine>,<start>,<limit>,<class>,<u0;u1;...>
//
// Binary (v1) — a versioned header followed by the sealed arena verbatim
// (trace.h describes the slab layout). Because the on-disk payload IS the
// in-memory layout, loading is one read into a 64-byte-aligned buffer plus
// header validation: no per-task parsing or reallocation. The rich ladder,
// dropped_tasks, and per-machine ground truth all round-trip exactly.
//
//   bytes [0,88)   header: magic "CRFTRBIN", version, flags (bit0 = rich),
//                  task/machine/sample/CSR counts, num_intervals,
//                  dropped_tasks, name length, arena byte size
//   then           cell name, zero-padded so the arena starts 64-aligned
//   then           the arena blob
//
// LoadCellTrace sniffs the leading magic and accepts either format; both
// loaders return nullopt on missing, malformed, or corrupted input
// (including truncated slabs and header/arena size mismatches).
//
// Binary traces can be loaded two ways (TraceLoadMode):
//   heap — read the arena into an aligned heap buffer (one fread);
//   mmap — map the file read-only and point the trace's spans straight into
//          the mapping (trace_internal::TraceArena::MapFromFile). Bit-for-bit
//          identical to the heap load — same bytes, same validation — but
//          near-zero-copy: only the metadata slabs the validator touches
//          become resident, the bulk usage slab pages in on demand, and
//          clean pages are shared across processes. The file must not be
//          modified while any CellTrace copy is alive.

#ifndef CRF_TRACE_TRACE_IO_H_
#define CRF_TRACE_TRACE_IO_H_

#include <optional>
#include <string>

#include "crf/trace/trace.h"

namespace crf {

// Writes `cell` to `path` in the text format. Aborts on I/O error (paths are
// operator input).
void SaveCellTrace(const CellTrace& cell, const std::string& path);

// Writes `cell` to `path` in the binary format.
void SaveCellTraceBinary(const CellTrace& cell, const std::string& path);

enum class TraceLoadMode {
  kAuto,    // heap load, either format (the historical default)
  kHeap,    // heap load; rejects text input
  kMapped,  // zero-copy mmap load; rejects text input
};

struct TraceLoadOptions {
  TraceLoadMode mode = TraceLoadMode::kAuto;
};

// Loads a trace in either format; returns nullopt if the file is missing or
// malformed.
std::optional<CellTrace> LoadCellTrace(const std::string& path);

// Load with an explicit mode and precise diagnostics: on failure returns
// nullopt and, when `error` is non-null, a message naming what was wrong
// (truncation byte counts, corrupt offset-table entries, bad header fields).
std::optional<CellTrace> LoadCellTrace(const std::string& path, const TraceLoadOptions& options,
                                       std::string* error = nullptr);

}  // namespace crf

#endif  // CRF_TRACE_TRACE_IO_H_
