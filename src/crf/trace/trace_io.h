// Trace persistence: a text format and a zero-copy binary format.
//
// Text (v1) — line-oriented CSV so generated traces can be inspected or fed
// to external tooling. Rich within-interval stats are not persisted in text
// (they are cheap to regenerate and 9x the size); loading a text trace yields
// has_rich() == false.
//
//   # crf-trace v1
//   cell,<name>,<num_intervals>,<num_machines>,<dropped_tasks>
//   machine,<index>,<capacity>,<true_peak[0];true_peak[1];...>
//   task,<task_id>,<job_id>,<machine>,<start>,<limit>,<class>,<u0;u1;...>
//
// Binary (v1) — a versioned header followed by the sealed arena verbatim
// (trace.h describes the slab layout). Because the on-disk payload IS the
// in-memory layout, loading is one read into a 64-byte-aligned buffer plus
// header validation: no per-task parsing or reallocation. The rich ladder,
// dropped_tasks, and per-machine ground truth all round-trip exactly.
//
//   bytes [0,88)   header: magic "CRFTRBIN", version, flags (bit0 = rich),
//                  task/machine/sample/CSR counts, num_intervals,
//                  dropped_tasks, name length, arena byte size
//   then           cell name, zero-padded so the arena starts 64-aligned
//   then           the arena blob
//
// LoadCellTrace sniffs the leading magic and accepts either format; both
// loaders return nullopt on missing, malformed, or corrupted input
// (including truncated slabs and header/arena size mismatches).

#ifndef CRF_TRACE_TRACE_IO_H_
#define CRF_TRACE_TRACE_IO_H_

#include <optional>
#include <string>

#include "crf/trace/trace.h"

namespace crf {

// Writes `cell` to `path` in the text format. Aborts on I/O error (paths are
// operator input).
void SaveCellTrace(const CellTrace& cell, const std::string& path);

// Writes `cell` to `path` in the binary format.
void SaveCellTraceBinary(const CellTrace& cell, const std::string& path);

// Loads a trace in either format; returns nullopt if the file is missing or
// malformed.
std::optional<CellTrace> LoadCellTrace(const std::string& path);

}  // namespace crf

#endif  // CRF_TRACE_TRACE_IO_H_
