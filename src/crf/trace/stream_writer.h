// StreamingTraceWriter: seal a binary .crftrace machine block by machine
// block, without ever materializing the whole arena in memory.
//
// The batch path (CellTraceBuilder::Seal + SaveCellTraceBinary) holds three
// copies of the bulk data at its peak: the per-task usage vectors, the
// sealed arena, and the file under write. At cloud scale (100k+ machines)
// that is tens of gigabytes. The streaming writer inverts the flow: the
// output file itself IS the arena. It sizes the file up front from the
// placement metadata (which is O(tasks), known before any usage sample
// exists), maps it writable (MAP_SHARED), writes every metadata column once,
// and hands out mutable spans into the mapped usage/rich/true-peak slabs so
// producers generate samples directly into the file. RetireMachines flushes
// a finished block of machines (msync) and evicts its pages (madvise), so
// resident memory tracks the block in flight, not the cell.
//
// Machine-major invariant: tasks must be numbered so machine_of is
// non-decreasing — machine m's tasks are exactly the index range
// [machine_begin(m), machine_end(m)) and its usage samples one contiguous
// slab run (the CSR index is the identity permutation). This is what makes
// block retirement page-clean, and it is the layout CellTrace's
// MachineRowsContiguous / DropMachinePages exploit on the read side.
// CellTraceBuilder::SealToFile and the streaming generator renumber their
// tasks into this order before writing.

#ifndef CRF_TRACE_STREAM_WRITER_H_
#define CRF_TRACE_STREAM_WRITER_H_

#include <cstdint>
#include <span>
#include <string>

#include "crf/trace/trace.h"

namespace crf {

// Borrowed views of the placement metadata, all sized num_tasks() (per-task)
// or num_machines() (per-machine). The writer copies everything it needs
// during construction; the spans need only stay valid for the constructor
// call.
struct StreamTraceSpec {
  std::string name;
  Interval num_intervals = 0;
  int64_t dropped_tasks = 0;
  bool rich = false;

  // Per-task, machine-major (machine_of non-decreasing, values in
  // [0, capacity.size())). Task i's usage series has runtime[i] samples.
  std::span<const TaskId> task_id;
  std::span<const JobId> job_id;
  std::span<const int32_t> machine_of;
  std::span<const Interval> start;
  std::span<const uint8_t> sched_class;
  std::span<const double> limit;
  std::span<const Interval> runtime;

  // Per-machine.
  std::span<const double> capacity;
  std::span<const Interval> true_peak_len;
};

class StreamingTraceWriter {
 public:
  // Creates `path`, sizes it for the full trace, maps it, and writes the
  // header plus every metadata column. On failure ok() is false and `error`
  // names the cause; the partially written file is left behind.
  StreamingTraceWriter(const StreamTraceSpec& spec, const std::string& path, std::string* error);
  ~StreamingTraceWriter();
  StreamingTraceWriter(const StreamingTraceWriter&) = delete;
  StreamingTraceWriter& operator=(const StreamingTraceWriter&) = delete;

  bool ok() const { return map_ != nullptr; }
  int32_t num_tasks() const { return num_tasks_; }
  int num_machines() const { return num_machines_; }
  uint64_t file_bytes() const { return file_bytes_; }

  // Machine m's task index range (machine-major numbering).
  int32_t machine_begin(int machine_index) const {
    return static_cast<int32_t>(csr_off_[machine_index]);
  }
  int32_t machine_end(int machine_index) const {
    return static_cast<int32_t>(csr_off_[machine_index + 1]);
  }

  // Mutable rows straight into the mapped file. A row stays writable for the
  // writer's whole lifetime, but writing into a retired machine's row drags
  // its pages back in — fill blocks in machine order, then retire them.
  std::span<float> usage_row(int32_t task_index);
  std::span<float> rich_row(int32_t task_index, RichColumn column);
  std::span<float> true_peak_row(int machine_index);

  // Flushes machines [begin, end)'s bulk rows (usage, rich, true peak) to
  // the file and drops their pages from the resident set. Call with
  // monotonically increasing, fully written blocks.
  void RetireMachines(int begin_machine, int end_machine);

  // Flushes outstanding writes and unmaps. Returns false (with `error`) on
  // I/O failure. The writer is unusable afterwards.
  bool Finish(std::string* error);

 private:
  void FlushAndDropArenaRange(uint64_t arena_begin, uint64_t arena_end);
  void Unmap();

  int32_t num_tasks_ = 0;
  int num_machines_ = 0;
  bool rich_ = false;
  uint64_t file_bytes_ = 0;
  uint64_t arena_offset_ = 0;
  uint64_t usage_samples_ = 0;

  std::byte* map_ = nullptr;   // whole-file writable mapping
  std::byte* arena_ = nullptr; // == map_ + arena_offset_

  // Pointers into the mapped metadata slabs (written once, read for row
  // geometry; never retired).
  const uint64_t* usage_off_ = nullptr;
  const uint64_t* peak_off_ = nullptr;
  const uint64_t* csr_off_ = nullptr;
  float* usage_slab_ = nullptr;
  float* rich_slab_ = nullptr;
  float* peak_slab_ = nullptr;
  uint64_t usage_slab_offset_ = 0;  // arena-relative byte offsets
  uint64_t rich_slab_offset_ = 0;
  uint64_t peak_slab_offset_ = 0;
};

}  // namespace crf

#endif  // CRF_TRACE_STREAM_WRITER_H_
