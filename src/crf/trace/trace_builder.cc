#include "crf/trace/trace_builder.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "crf/trace/stream_writer.h"
#include "crf/util/check.h"

namespace crf {
namespace {

// Typed write access to one slab of an arena under construction.
template <typename T>
std::span<T> MutableSlab(trace_internal::TraceArena& arena, uint64_t offset, uint64_t elements) {
  return std::span<T>(reinterpret_cast<T*>(arena.bytes + offset), elements);
}

}  // namespace

void CellTraceBuilder::Reset(std::string name, Interval num_intervals, int num_machines) {
  CRF_CHECK_GE(num_intervals, 0);
  CRF_CHECK_GE(num_machines, 0);
  name_ = std::move(name);
  num_intervals_ = num_intervals;
  dropped_tasks_ = 0;
  task_id_.clear();
  job_id_.clear();
  machine_of_.clear();
  start_.clear();
  limit_.clear();
  sched_class_.clear();
  usage_.clear();
  rich_.clear();
  capacity_.assign(num_machines, 1.0);
  true_peak_.assign(num_machines, {});
  machine_tasks_.assign(num_machines, {});
  rich_enabled_ = false;
}

void CellTraceBuilder::set_machine_capacity(int machine_index, double capacity) {
  CRF_CHECK_GE(machine_index, 0);
  CRF_CHECK_LT(machine_index, num_machines());
  capacity_[machine_index] = capacity;
}

int32_t CellTraceBuilder::AddTask(TaskId task_id, JobId job_id, int32_t machine_index,
                                  Interval start, double limit, SchedulingClass sched_class) {
  const int32_t index = num_tasks();
  task_id_.push_back(task_id);
  job_id_.push_back(job_id);
  machine_of_.push_back(machine_index);
  start_.push_back(start);
  limit_.push_back(limit);
  sched_class_.push_back(sched_class);
  usage_.emplace_back();
  rich_.emplace_back();
  if (machine_index >= 0 && machine_index < num_machines()) {
    machine_tasks_[machine_index].push_back(index);
  }
  return index;
}

void CellTraceBuilder::AppendRich(int32_t task_index, const RichUsage& row) {
  rich_enabled_ = true;
  rich_[task_index].push_back(row);
}

CellTrace CellTraceBuilder::Seal() {
  const int32_t n = num_tasks();
  const int m = num_machines();

  int64_t samples = 0;
  for (int32_t i = 0; i < n; ++i) {
    CRF_CHECK_GE(machine_of_[i], 0) << "task " << i << " has no machine";
    CRF_CHECK_LT(machine_of_[i], m) << "task " << i << " machine index out of range";
    if (rich_enabled_) {
      CRF_CHECK_EQ(rich_[i].size(), usage_[i].size())
          << "task " << i << " rich ladder does not match its usage series";
    }
    samples += static_cast<int64_t>(usage_[i].size());
  }
  int64_t peak_samples = 0;
  int64_t csr_entries = 0;
  for (int machine = 0; machine < m; ++machine) {
    peak_samples += static_cast<int64_t>(true_peak_[machine].size());
    csr_entries += static_cast<int64_t>(machine_tasks_[machine].size());
  }
  CRF_CHECK_EQ(csr_entries, n) << "CSR rows must cover every task exactly once";

  const trace_internal::ArenaLayout layout =
      trace_internal::ComputeArenaLayout(n, m, samples, peak_samples, csr_entries, rich_enabled_);
  auto arena = std::make_shared<trace_internal::TraceArena>(layout.total_bytes);

  const auto ids = MutableSlab<TaskId>(*arena, layout.task_id, n);
  const auto jobs = MutableSlab<JobId>(*arena, layout.job_id, n);
  const auto machines_of = MutableSlab<int32_t>(*arena, layout.machine_of, n);
  const auto starts = MutableSlab<Interval>(*arena, layout.start, n);
  const auto classes = MutableSlab<uint8_t>(*arena, layout.sched_class, n);
  const auto limits = MutableSlab<double>(*arena, layout.limit, n);
  const auto usage_off = MutableSlab<uint64_t>(*arena, layout.usage_off, n + 1);
  const auto usage = MutableSlab<float>(*arena, layout.usage, samples);
  const auto rich = MutableSlab<float>(
      *arena, layout.rich, rich_enabled_ ? kNumRichColumns * static_cast<uint64_t>(samples) : 0);
  const auto capacities = MutableSlab<double>(*arena, layout.capacity, m);
  const auto peak_off = MutableSlab<uint64_t>(*arena, layout.peak_off, m + 1);
  const auto peaks = MutableSlab<float>(*arena, layout.true_peak, peak_samples);
  const auto csr_off = MutableSlab<uint64_t>(*arena, layout.csr_off, m + 1);
  const auto csr_tasks = MutableSlab<int32_t>(*arena, layout.csr_tasks, csr_entries);

  uint64_t offset = 0;
  for (int32_t i = 0; i < n; ++i) {
    ids[i] = task_id_[i];
    jobs[i] = job_id_[i];
    machines_of[i] = machine_of_[i];
    starts[i] = start_[i];
    classes[i] = static_cast<uint8_t>(sched_class_[i]);
    limits[i] = limit_[i];
    usage_off[i] = offset;
    if (!usage_[i].empty()) {
      std::memcpy(usage.data() + offset, usage_[i].data(), usage_[i].size() * sizeof(float));
    }
    if (rich_enabled_) {
      const uint64_t s = static_cast<uint64_t>(samples);
      for (size_t k = 0; k < rich_[i].size(); ++k) {
        const RichUsage& row = rich_[i][k];
        rich[0 * s + offset + k] = row.avg;
        rich[1 * s + offset + k] = row.p50;
        rich[2 * s + offset + k] = row.p60;
        rich[3 * s + offset + k] = row.p70;
        rich[4 * s + offset + k] = row.p80;
        rich[5 * s + offset + k] = row.p90;
        rich[6 * s + offset + k] = row.p95;
        rich[7 * s + offset + k] = row.p99;
        rich[8 * s + offset + k] = row.max;
      }
    }
    offset += usage_[i].size();
  }
  usage_off[n] = offset;

  uint64_t peak_offset = 0;
  uint64_t csr_offset = 0;
  for (int machine = 0; machine < m; ++machine) {
    capacities[machine] = capacity_[machine];
    peak_off[machine] = peak_offset;
    if (!true_peak_[machine].empty()) {
      std::memcpy(peaks.data() + peak_offset, true_peak_[machine].data(),
                  true_peak_[machine].size() * sizeof(float));
    }
    peak_offset += true_peak_[machine].size();
    csr_off[machine] = csr_offset;
    if (!machine_tasks_[machine].empty()) {
      std::memcpy(csr_tasks.data() + csr_offset, machine_tasks_[machine].data(),
                  machine_tasks_[machine].size() * sizeof(int32_t));
    }
    csr_offset += machine_tasks_[machine].size();
  }
  peak_off[m] = peak_offset;
  csr_off[m] = csr_offset;

  CellTrace cell = trace_internal::AttachTrace(std::move(name_), num_intervals_, dropped_tasks_,
                                               std::move(arena), n, m, samples, peak_samples,
                                               csr_entries, rich_enabled_);
  Reset("", 0, 0);
  return cell;
}

bool CellTraceBuilder::SealToFile(const std::string& path, std::string* error) {
  const int32_t n = num_tasks();
  const int m = num_machines();

  // Same invariants Seal() enforces.
  for (int32_t i = 0; i < n; ++i) {
    CRF_CHECK_GE(machine_of_[i], 0) << "task " << i << " has no machine";
    CRF_CHECK_LT(machine_of_[i], m) << "task " << i << " machine index out of range";
    if (rich_enabled_) {
      CRF_CHECK_EQ(rich_[i].size(), usage_[i].size())
          << "task " << i << " rich ladder does not match its usage series";
    }
  }
  int64_t csr_entries = 0;
  for (int machine = 0; machine < m; ++machine) {
    csr_entries += static_cast<int64_t>(machine_tasks_[machine].size());
  }
  CRF_CHECK_EQ(csr_entries, n) << "CSR rows must cover every task exactly once";

  // Machine-major renumbering: new index order is the concatenation of the
  // CSR rows, which preserves each machine's placement order.
  std::vector<int32_t> old_of_new;
  old_of_new.reserve(n);
  for (int machine = 0; machine < m; ++machine) {
    old_of_new.insert(old_of_new.end(), machine_tasks_[machine].begin(),
                      machine_tasks_[machine].end());
  }

  std::vector<TaskId> task_id(n);
  std::vector<JobId> job_id(n);
  std::vector<int32_t> machine_of(n);
  std::vector<Interval> start(n);
  std::vector<uint8_t> sched_class(n);
  std::vector<double> limit(n);
  std::vector<Interval> runtime(n);
  for (int32_t i = 0; i < n; ++i) {
    const int32_t old = old_of_new[i];
    task_id[i] = task_id_[old];
    job_id[i] = job_id_[old];
    machine_of[i] = machine_of_[old];
    start[i] = start_[old];
    sched_class[i] = static_cast<uint8_t>(sched_class_[old]);
    limit[i] = limit_[old];
    runtime[i] = static_cast<Interval>(usage_[old].size());
  }
  std::vector<Interval> true_peak_len(m);
  for (int machine = 0; machine < m; ++machine) {
    true_peak_len[machine] = static_cast<Interval>(true_peak_[machine].size());
  }

  StreamTraceSpec spec;
  spec.name = name_;
  spec.num_intervals = num_intervals_;
  spec.dropped_tasks = dropped_tasks_;
  spec.rich = rich_enabled_;
  spec.task_id = task_id;
  spec.job_id = job_id;
  spec.machine_of = machine_of;
  spec.start = start;
  spec.sched_class = sched_class;
  spec.limit = limit;
  spec.runtime = runtime;
  spec.capacity = capacity_;
  spec.true_peak_len = true_peak_len;

  StreamingTraceWriter writer(spec, path, error);
  if (!writer.ok()) {
    return false;
  }
  constexpr int kRetireBlock = 256;
  int retired = 0;
  for (int machine = 0; machine < m; ++machine) {
    for (int32_t i = writer.machine_begin(machine); i < writer.machine_end(machine); ++i) {
      const int32_t old = old_of_new[i];
      const std::vector<float>& usage = usage_[old];
      std::copy(usage.begin(), usage.end(), writer.usage_row(i).begin());
      if (rich_enabled_) {
        std::span<float> cols[kNumRichColumns];
        for (int c = 0; c < kNumRichColumns; ++c) {
          cols[c] = writer.rich_row(i, static_cast<RichColumn>(c));
        }
        for (size_t k = 0; k < rich_[old].size(); ++k) {
          const RichUsage& row = rich_[old][k];
          cols[0][k] = row.avg;
          cols[1][k] = row.p50;
          cols[2][k] = row.p60;
          cols[3][k] = row.p70;
          cols[4][k] = row.p80;
          cols[5][k] = row.p90;
          cols[6][k] = row.p95;
          cols[7][k] = row.p99;
          cols[8][k] = row.max;
        }
      }
    }
    const std::vector<float>& peak = true_peak_[machine];
    std::copy(peak.begin(), peak.end(), writer.true_peak_row(machine).begin());
    if (machine + 1 - retired >= kRetireBlock) {
      writer.RetireMachines(retired, machine + 1);
      retired = machine + 1;
    }
  }
  writer.RetireMachines(retired, m);
  if (!writer.Finish(error)) {
    return false;
  }
  Reset("", 0, 0);
  return true;
}

// Defined here rather than in trace.cc so the sealed-trace translation unit
// stays free of build-state code: filtering reseals through the builder.
void CellTrace::FilterToServingTasks() {
  CellTraceBuilder builder(name, num_intervals, num_machines());
  builder.set_dropped_tasks(dropped_tasks);
  for (int machine = 0; machine < num_machines(); ++machine) {
    builder.set_machine_capacity(machine, machine_capacity(machine));
    const std::span<const float> peak = true_peak(machine);
    builder.mutable_true_peak(machine).assign(peak.begin(), peak.end());
  }
  // Kept tasks are renumbered in task order and re-appended to their
  // machines' lists in that order, exactly like the seed's rebuild.
  for (int32_t index = 0; index < num_tasks(); ++index) {
    const TaskView task = this->task(index);
    if (!IsServing(task.sched_class())) {
      continue;
    }
    const int32_t copy = builder.AddTask(task.task_id(), task.job_id(), task.machine_index(),
                                         task.start(), task.limit(), task.sched_class());
    const std::span<const float> usage = task.usage();
    builder.ReserveUsage(copy, usage.size());
    for (const float u : usage) {
      builder.AppendUsage(copy, u);
    }
    if (has_rich()) {
      for (Interval k = 0; k < static_cast<Interval>(usage.size()); ++k) {
        builder.AppendRich(copy, task.RichAt(k));
      }
    }
  }
  *this = builder.Seal();
}

}  // namespace crf
