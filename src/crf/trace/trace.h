// Trace data model: a sealed, columnar cell trace.
//
// Mirrors the slice of the Google cluster trace v3 that the paper's simulator
// consumes: per-task 5-minute CPU usage series with limits and fixed machine
// placements. The public trace reports a usage *distribution* per 5-minute
// interval rather than a single number; the paper feeds the simulator the
// within-interval 90th percentile (Section 5.1.2) and keeps the true
// machine-level within-interval peak as ground truth.
//
// Layout (DESIGN.md §6c): a CellTrace owns ONE contiguous 64-byte-aligned
// arena holding every column as a flat slab —
//
//   task metadata   task_id[N] job_id[N] machine[N] start[N] class[N] limit[N]
//   usage           usage_off[N+1]  usage[S]          (task i's scalar series
//                                                      is usage[off[i]..off[i+1]))
//   rich ladder     rich[9*S] column-major (avg,p50,...,max), optional
//   machines        capacity[M]  peak_off[M+1] true_peak[P]
//   CSR task index  csr_off[M+1] csr_tasks[K]          (machine m's tasks are
//                                                       csr_tasks[off[m]..off[m+1]))
//
// A CellTrace is immutable once sealed by CellTraceBuilder::Seal (or the
// trace_io loaders). Copies are cheap: they share the arena through a
// shared_ptr. All accessors hand out std::span views into the arena; a span
// remains valid as long as ANY CellTrace copy sharing the arena is alive.
// Never retain a span past the last such copy.
//
// Residency rule (unified across the whole stack): a task occupies its
// machine over [start, departure()) where departure() == max(end(), start+1).
// A zero-length task (empty usage series) is therefore resident for exactly
// one interval — holding its limit and counting toward the resident set —
// while contributing zero usage. The event-driven engines, the naive
// reference simulator, and the Machine*Series helpers below all follow this
// one rule.

#ifndef CRF_TRACE_TRACE_H_
#define CRF_TRACE_TRACE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "crf/util/time_grid.h"

namespace crf {

using TaskId = int64_t;
using JobId = int64_t;

// Google trace scheduling classes; the paper's simulations keep only the
// latency-sensitive classes 2 and 3 (Section 5.1.2).
enum class SchedulingClass : uint8_t {
  kBestEffort = 0,
  kBatch = 1,
  kLatencySensitive = 2,
  kHighlySensitive = 3,
};

bool IsServing(SchedulingClass sched_class);

// Within-interval usage distribution of one task over one 5-minute interval.
// Used as a row value by the builder and generator; sealed traces store the
// ladder as struct-of-arrays percentile columns (see RichColumn).
struct RichUsage {
  float avg = 0.0f;
  float p50 = 0.0f;
  float p60 = 0.0f;
  float p70 = 0.0f;
  float p80 = 0.0f;
  float p90 = 0.0f;
  float p95 = 0.0f;
  float p99 = 0.0f;
  float max = 0.0f;

  // Returns the percentile column nearest to p (p in {50,60,70,80,90,95,99,
  // 100}); used by the Fig 6 estimator sweep.
  float AtPercentile(int p) const;
};

// Column order of the struct-of-arrays rich ladder in the arena.
enum class RichColumn : int {
  kAvg = 0,
  kP50,
  kP60,
  kP70,
  kP80,
  kP90,
  kP95,
  kP99,
  kMax,
};
inline constexpr int kNumRichColumns = 9;

// Maps a percentile to the nearest stored column (same rounding as
// RichUsage::AtPercentile).
RichColumn RichColumnForPercentile(int p);

class CellTrace;
class CellTraceBuilder;

namespace trace_internal {

// One 64-byte-aligned region holding every column of a sealed trace. Shared
// (immutably) by every CellTrace copy via shared_ptr. Two backings exist
// behind this one interface:
//   heap   — an aligned allocation, zero-filled, populated by the builder or
//            the byte-stream binary loader;
//   mapped — a read-only mmap of a .crftrace file (MapFromFile). The OS pages
//            columns in on demand, so loading touches only the metadata slabs
//            the validator reads; the bulk usage slab stays non-resident
//            until someone actually scans it, and clean pages are shared
//            across processes mapping the same file.
struct TraceArena {
  explicit TraceArena(uint64_t num_bytes);
  ~TraceArena();
  TraceArena(const TraceArena&) = delete;
  TraceArena& operator=(const TraceArena&) = delete;

  // Maps `path` read-only and exposes the `num_bytes`-long arena blob that
  // starts `arena_offset` bytes into the file. `arena_offset` must be
  // 64-byte aligned (the binary trace format pads the header/name region so
  // this holds, making the mapped slabs exactly as aligned as heap ones).
  // Returns nullptr with `*error` set on failure.
  static std::shared_ptr<const TraceArena> MapFromFile(const std::string& path,
                                                       uint64_t arena_offset, uint64_t num_bytes,
                                                       std::string* error);

  bool is_mapped() const { return map_base != nullptr; }

  // Estimated bytes of the arena currently resident in physical memory:
  // an mincore page scan for mapped arenas, `size` for heap arenas (heap
  // slabs are written in full when sealed, so they are fully resident).
  int64_t ResidentBytes() const;

  // Page-granular residency hints, no-ops on heap arenas. Offsets are
  // relative to `bytes` (the arena blob). PrefetchRange asks the kernel to
  // read the range ahead (MADV_WILLNEED, rounded outward to whole pages);
  // DropRange evicts it from the resident set (MADV_DONTNEED, rounded inward
  // so neighboring data is never evicted). Neither affects correctness —
  // dropped pages transparently refault from the page cache or the file.
  void PrefetchRange(uint64_t offset, uint64_t length) const;
  void DropRange(uint64_t offset, uint64_t length) const;

  std::byte* bytes = nullptr;
  uint64_t size = 0;
  // Mapped backing (empty for heap arenas): the whole-file mapping that
  // `bytes` points into.
  void* map_base = nullptr;
  uint64_t map_length = 0;

 private:
  TraceArena() = default;  // mapped arenas are built by MapFromFile
};

// Shared slab geometry used by the builder, the sealed trace, and the binary
// trace format: the byte offsets of every column for given element counts.
struct ArenaLayout {
  uint64_t task_id = 0;
  uint64_t job_id = 0;
  uint64_t machine_of = 0;
  uint64_t start = 0;
  uint64_t sched_class = 0;
  uint64_t limit = 0;
  uint64_t usage_off = 0;
  uint64_t usage = 0;
  uint64_t rich = 0;  // == usage slab end when !has_rich
  uint64_t capacity = 0;
  uint64_t peak_off = 0;
  uint64_t true_peak = 0;
  uint64_t csr_off = 0;
  uint64_t csr_tasks = 0;
  uint64_t total_bytes = 0;
};
ArenaLayout ComputeArenaLayout(int64_t num_tasks, int64_t num_machines, int64_t usage_samples,
                               int64_t peak_samples, int64_t csr_entries, bool has_rich);

// Seals a trace around an already-populated arena (used by the binary
// loader); the caller is responsible for having validated the arena contents.
CellTrace AttachTrace(std::string name, Interval num_intervals, int64_t dropped_tasks,
                      std::shared_ptr<const TraceArena> arena, int64_t num_tasks,
                      int64_t num_machines, int64_t usage_samples, int64_t peak_samples,
                      int64_t csr_entries, bool has_rich);

}  // namespace trace_internal

// Non-owning view of one task in a sealed CellTrace. Cheap to copy (pointer +
// index); valid only while the underlying arena is alive.
class TaskView {
 public:
  TaskView(const CellTrace* cell, int32_t index) : cell_(cell), index_(index) {}

  int32_t index() const { return index_; }
  TaskId task_id() const;
  JobId job_id() const;
  int32_t machine_index() const;
  Interval start() const;
  double limit() const;
  SchedulingClass sched_class() const;

  // Per-interval usage scalar (within-interval p90, capped at limit);
  // usage()[k] covers interval start() + k.
  std::span<const float> usage() const;
  Interval runtime() const { return static_cast<Interval>(usage().size()); }
  // One past the last interval with usage.
  Interval end() const { return start() + runtime(); }
  // One past the last resident interval: max(end(), start()+1). This is the
  // single residency rule — a zero-length task departs after one interval.
  Interval departure() const { return std::max(end(), start() + 1); }
  bool ResidentAt(Interval t) const { return t >= start() && t < departure(); }
  // Usage at interval t; 0 outside the usage series (including the one
  // resident interval of a zero-length task).
  double UsageAt(Interval t) const {
    const std::span<const float> u = usage();
    const int64_t k = static_cast<int64_t>(t) - start();
    return k >= 0 && k < static_cast<int64_t>(u.size()) ? static_cast<double>(u[k]) : 0.0;
  }
  // Peak of the scalar usage series over the task's whole lifetime.
  double PeakUsage() const;

  // Rich ladder access; only valid when the cell has_rich().
  std::span<const float> rich_column(RichColumn column) const;
  // The full ladder row for lifetime offset k (interval start() + k).
  RichUsage RichAt(Interval k) const;

 private:
  const CellTrace* cell_;
  int32_t index_;
};

// A sealed, columnar cell trace. Construct with CellTraceBuilder or the
// trace_io loaders; default-constructed traces are empty (0 machines/tasks).
class CellTrace {
 public:
  std::string name;
  Interval num_intervals = 0;
  // Tasks the generator's placement step could not fit anywhere (reporting
  // only; they have no usage and no machine).
  int64_t dropped_tasks = 0;

  CellTrace() = default;

  int32_t num_tasks() const { return static_cast<int32_t>(start_.size()); }
  int32_t num_machines() const { return static_cast<int32_t>(capacity_.size()); }
  TaskView task(int32_t index) const { return TaskView(this, index); }

  // Indices into tasks of every task ever placed on machine m, in placement
  // order (one CSR row).
  std::span<const int32_t> machine_tasks(int machine_index) const;
  double machine_capacity(int machine_index) const;
  // Ground-truth within-interval machine peak per interval (sum over resident
  // tasks of time-aligned sub-interval samples, maximized over sub-instants).
  // Empty when the trace carries no ground truth for this machine.
  std::span<const float> true_peak(int machine_index) const;

  bool has_rich() const { return !rich_.empty(); }

  // Raw columns (parallel arrays indexed by task).
  std::span<const TaskId> task_ids() const { return task_id_; }
  std::span<const JobId> job_ids() const { return job_id_; }
  std::span<const int32_t> task_machines() const { return machine_of_; }
  std::span<const Interval> task_starts() const { return start_; }
  std::span<const uint8_t> task_classes() const { return sched_class_; }
  std::span<const double> task_limits() const { return limit_; }
  // One contiguous slab of all tasks' usage samples; task i owns
  // [usage_offsets()[i], usage_offsets()[i+1]).
  std::span<const float> usage_arena() const { return usage_; }
  std::span<const uint64_t> usage_offsets() const { return usage_off_; }

  // The whole sealed arena, for the binary trace writer. Empty only for a
  // default-constructed (never sealed) trace.
  std::span<const std::byte> arena_bytes() const {
    return arena_ == nullptr ? std::span<const std::byte>()
                             : std::span<const std::byte>(arena_->bytes, arena_->size);
  }
  int64_t usage_sample_count() const { return static_cast<int64_t>(usage_.size()); }
  int64_t peak_sample_count() const { return static_cast<int64_t>(peak_.size()); }

  // True when the arena is an mmap of a .crftrace file rather than a heap
  // allocation (see trace_internal::TraceArena).
  bool is_mapped() const { return arena_ != nullptr && arena_->is_mapped(); }
  // Estimated bytes of the arena resident in physical memory (== arena size
  // for heap-backed traces).
  int64_t ResidentArenaBytes() const {
    return arena_ == nullptr ? 0 : arena_->ResidentBytes();
  }

  // True when machine m's CSR row is the contiguous ascending index range
  // [row.front(), row.front() + row.size()) — the layout streamed generation
  // produces, where the machine's usage samples are one contiguous arena run.
  bool MachineRowsContiguous(int machine_index) const;
  // Residency hints for machine m's bulk slabs (usage, rich, true_peak).
  // No-ops unless the trace is mapped and the machine's rows are contiguous.
  // PrefetchMachinePages warms the pages before a sequential scan;
  // DropMachinePages evicts them once a shard is done with the machine, so
  // a full-cell replay's resident set scales with machines-in-flight rather
  // than cell size. Neither ever changes results.
  void PrefetchMachinePages(int machine_index) const;
  void DropMachinePages(int machine_index) const;
  // Blocked form: one madvise per slab for machines [begin, end) when their
  // rows chain contiguously (the machine-major streamed layout); otherwise
  // falls back to per-machine drops. Prefer this from loops — the inward
  // page rounding of a per-machine drop strands the boundary page between
  // every pair of adjacent machines.
  void DropMachinePages(int begin_machine, int end_machine) const;

  // Machine aggregate series, rebuilt on arrival/departure event deltas:
  // O(N_m + T) for limits/residency and O(S_m + T) for usage, instead of the
  // seed's O(N_m * T) rescans. All follow the unified residency rule.
  std::vector<double> MachineUsageSeries(int machine_index) const;
  std::vector<double> MachineLimitSeries(int machine_index) const;
  std::vector<int32_t> MachineResidentCount(int machine_index) const;

  // Removes tasks whose scheduling class fails `IsServing` (mirrors the
  // paper's filter to classes 2-3), resealing into a fresh arena.
  // true_peak keeps the filtered-out batch tasks' contribution; it remains
  // valid as ground truth for "everything that ran on the machine".
  void FilterToServingTasks();

  int64_t TotalTaskCount() const { return num_tasks(); }
  double TotalCapacity() const;

 private:
  friend class TaskView;
  friend class CellTraceBuilder;
  friend class MachineSeriesCursor;
  friend CellTrace trace_internal::AttachTrace(std::string, Interval, int64_t,
                                               std::shared_ptr<const trace_internal::TraceArena>,
                                               int64_t, int64_t, int64_t, int64_t, int64_t, bool);

  // Points the column spans into `arena` using the layout implied by the
  // element counts; called by the builder and the binary loader.
  void Attach(std::shared_ptr<const trace_internal::TraceArena> arena, int64_t num_tasks,
              int64_t num_machines, int64_t usage_samples, int64_t peak_samples,
              int64_t csr_entries, bool has_rich);

  std::shared_ptr<const trace_internal::TraceArena> arena_;
  std::span<const TaskId> task_id_;
  std::span<const JobId> job_id_;
  std::span<const int32_t> machine_of_;
  std::span<const Interval> start_;
  std::span<const uint8_t> sched_class_;
  std::span<const double> limit_;
  std::span<const uint64_t> usage_off_;
  std::span<const float> usage_;
  std::span<const float> rich_;  // 9*S floats, column-major; empty if no rich
  std::span<const double> capacity_;
  std::span<const uint64_t> peak_off_;
  std::span<const float> peak_;
  std::span<const uint64_t> csr_off_;
  std::span<const int32_t> csr_tasks_;
};

// Streams one machine's per-interval aggregates (usage sum, limit sum,
// resident count) without allocating per call. Reset(m) materialises all
// three series in one fused O(tasks + T) pass over the machine's CSR row:
// usage is scatter-added straight out of the contiguous arena, limits and
// resident counts via event deltas (+ at start, - at departure) followed by
// a prefix sum. The internal buffers are reused across machines, so a loop
// over every machine performs zero allocations after the first Reset.
//
// Usage:
//   MachineSeriesCursor cursor(cell);
//   cursor.Reset(m);
//   while (cursor.Next()) {
//     use(cursor.interval(), cursor.usage(), cursor.limit_sum(),
//         cursor.resident());
//   }
//
// Next() visits every interval in [0, cell.num_intervals) in order. The
// cursor borrows the cell's arena; it must not outlive the trace.
class MachineSeriesCursor {
 public:
  explicit MachineSeriesCursor(const CellTrace& cell);

  void Reset(int machine_index);
  bool Next();

  Interval interval() const { return t_; }
  double usage() const { return usage_buf_[t_]; }
  double limit_sum() const { return limit_buf_[t_]; }
  int32_t resident() const { return resident_buf_[t_]; }

 private:
  const CellTrace* cell_;
  std::vector<double> usage_buf_;     // per-interval usage sum
  std::vector<double> limit_buf_;     // per-interval resident limit sum
  std::vector<int32_t> resident_buf_; // per-interval resident count
  Interval t_ = -1;
};

inline TaskId TaskView::task_id() const { return cell_->task_id_[index_]; }
inline JobId TaskView::job_id() const { return cell_->job_id_[index_]; }
inline int32_t TaskView::machine_index() const { return cell_->machine_of_[index_]; }
inline Interval TaskView::start() const { return cell_->start_[index_]; }
inline double TaskView::limit() const { return cell_->limit_[index_]; }
inline SchedulingClass TaskView::sched_class() const {
  return static_cast<SchedulingClass>(cell_->sched_class_[index_]);
}
inline std::span<const float> TaskView::usage() const {
  const uint64_t begin = cell_->usage_off_[index_];
  const uint64_t end = cell_->usage_off_[index_ + 1];
  return cell_->usage_.subspan(begin, end - begin);
}

}  // namespace crf

#endif  // CRF_TRACE_TRACE_H_
