// Trace data model.
//
// Mirrors the slice of the Google cluster trace v3 that the paper's simulator
// consumes: per-task 5-minute CPU usage series with limits and fixed machine
// placements. The public trace reports a usage *distribution* per 5-minute
// interval rather than a single number; the paper feeds the simulator the
// within-interval 90th percentile (Section 5.1.2) and keeps the true
// machine-level within-interval peak as ground truth. TaskTrace::usage is
// that p90 series (capped at the limit); MachineTrace::true_peak is the
// ground-truth peak series; RichUsage optionally keeps the full percentile
// ladder for experiments that need it (Fig 1, Fig 6).

#ifndef CRF_TRACE_TRACE_H_
#define CRF_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crf/util/time_grid.h"

namespace crf {

using TaskId = int64_t;
using JobId = int64_t;

// Google trace scheduling classes; the paper's simulations keep only the
// latency-sensitive classes 2 and 3 (Section 5.1.2).
enum class SchedulingClass : uint8_t {
  kBestEffort = 0,
  kBatch = 1,
  kLatencySensitive = 2,
  kHighlySensitive = 3,
};

bool IsServing(SchedulingClass sched_class);

// Within-interval usage distribution of one task over one 5-minute interval.
struct RichUsage {
  float avg = 0.0f;
  float p50 = 0.0f;
  float p60 = 0.0f;
  float p70 = 0.0f;
  float p80 = 0.0f;
  float p90 = 0.0f;
  float p95 = 0.0f;
  float p99 = 0.0f;
  float max = 0.0f;

  // Returns the percentile column nearest to p (p in {50,60,70,80,90,95,99,
  // 100}); used by the Fig 6 estimator sweep.
  float AtPercentile(int p) const;
};

struct TaskTrace {
  TaskId task_id = 0;
  JobId job_id = 0;
  int32_t machine_index = -1;
  Interval start = 0;
  double limit = 0.0;
  SchedulingClass sched_class = SchedulingClass::kLatencySensitive;
  // Per-interval usage scalar (within-interval p90, capped at limit);
  // usage[k] covers interval start + k.
  std::vector<float> usage;
  // Optional full within-interval distributions; empty or same size as usage.
  std::vector<RichUsage> rich;

  // One past the last interval with usage.
  Interval end() const { return start + static_cast<Interval>(usage.size()); }
  Interval runtime() const { return static_cast<Interval>(usage.size()); }
  bool ResidentAt(Interval t) const { return t >= start && t < end(); }
  // Usage at interval t; 0 outside the task's lifetime.
  double UsageAt(Interval t) const {
    return ResidentAt(t) ? static_cast<double>(usage[t - start]) : 0.0;
  }
  // Peak of the scalar usage series over the task's whole lifetime.
  double PeakUsage() const;
};

struct MachineTrace {
  double capacity = 1.0;
  // Indices into CellTrace::tasks of every task ever placed on this machine.
  std::vector<int32_t> task_indices;
  // Ground-truth within-interval machine peak per interval (sum over resident
  // tasks of time-aligned sub-interval samples, maximized over sub-instants).
  std::vector<float> true_peak;
};

struct CellTrace {
  std::string name;
  Interval num_intervals = 0;
  std::vector<MachineTrace> machines;
  std::vector<TaskTrace> tasks;
  // Tasks the generator's placement step could not fit anywhere (reporting
  // only; they have no usage and no machine).
  int64_t dropped_tasks = 0;

  // Sum over the machine's tasks of UsageAt(t), for every t — the machine
  // aggregate usage series U(J, t).
  std::vector<double> MachineUsageSeries(int machine_index) const;
  // Sum of limits of resident tasks per interval.
  std::vector<double> MachineLimitSeries(int machine_index) const;
  // Number of resident tasks per interval.
  std::vector<int32_t> MachineResidentCount(int machine_index) const;

  // Removes tasks whose scheduling class fails `IsServing` (mirrors the
  // paper's filter to classes 2-3), rebuilding machine task lists.
  void FilterToServingTasks();

  int64_t TotalTaskCount() const { return static_cast<int64_t>(tasks.size()); }
  double TotalCapacity() const;
};

}  // namespace crf

#endif  // CRF_TRACE_TRACE_H_
