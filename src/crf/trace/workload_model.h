// Per-task CPU usage synthesis.
//
// Each task's usage is a mean level (a fraction of its limit) modulated by a
// diurnal wave, an AR(1) noise process, and rare spike episodes that push
// usage toward the limit — the "task that reaches its limit 5% of the time
// but usually runs much lower" behaviour Section 2.2 identifies as the
// overcommit opportunity. Within each 5-minute interval the model emits
// kSubSamples sub-interval samples (multiplicative lognormal jitter around
// the interval level), from which the generator derives the within-interval
// percentile ladder and the machine-level true peak.

#ifndef CRF_TRACE_WORKLOAD_MODEL_H_
#define CRF_TRACE_WORKLOAD_MODEL_H_

#include <array>
#include <span>

#include "crf/trace/trace.h"
#include "crf/util/rng.h"
#include "crf/util/time_grid.h"

namespace crf {

// Number of sub-interval samples per 5-minute interval (25-second spacing).
inline constexpr int kSubSamplesPerInterval = 12;

struct TaskUsageParams {
  double limit = 1.0;
  // Mean usage as a fraction of the limit.
  double mean_ratio = 0.5;
  // Relative amplitude of the daily sine wave (0 = flat).
  double diurnal_amplitude = 0.3;
  // Phase of the daily wave in fractional days [0, 1).
  double phase_days = 0.0;
  // AR(1) autocorrelation and stationary stddev (as a fraction of the limit).
  double ar_rho = 0.85;
  double ar_sigma = 0.06;
  // Probability per interval of starting a spike episode, the usage/limit
  // level it drives to, and its length in intervals.
  double spike_prob = 0.004;
  double spike_level = 0.95;
  Interval spike_duration = 2;
  // Lognormal sigma of within-interval sub-sample jitter.
  double within_sigma = 0.08;
  // Coupling to the cell-wide shared load factor in [0, 1]: 0 = fully
  // independent, 1 = usage scales with the shared factor. Serving jobs that
  // all face the same user traffic have high coupling; batch jobs have none.
  double load_coupling = 0.0;
};

class TaskUsageModel {
 public:
  // `interval0` is the absolute interval at which the task starts (so that
  // the diurnal phase is anchored to wall-clock time, not task age).
  TaskUsageModel(const TaskUsageParams& params, Interval interval0, Rng rng);

  // Produces the sub-interval usage samples for the next interval. Samples
  // are clamped to [0, limit]. `shared_load` is the cell-wide load factor
  // for this interval (mean 1.0); it scales usage by
  // (1 - load_coupling + load_coupling * shared_load).
  void Step(std::span<double> sub_samples, double shared_load = 1.0);

  const TaskUsageParams& params() const { return params_; }

 private:
  TaskUsageParams params_;
  Rng rng_;
  Interval next_interval_;
  double ar_state_ = 0.0;
  Interval spike_remaining_ = 0;
};

// Summarizes kSubSamplesPerInterval sub-samples into the stored trace data.
struct IntervalSummary {
  float scalar_p90 = 0.0f;  // the simulator's usage input (Section 5.1.2)
  RichUsage rich;
};
IntervalSummary SummarizeInterval(std::span<const double> sub_samples);

}  // namespace crf

#endif  // CRF_TRACE_WORKLOAD_MODEL_H_
