// Shared per-machine event ordering for the trace-driven engines.
//
// Both the batch simulator (crf/sim/simulator.cc) and the streaming replay
// layer (crf/serve) walk a machine's tasks as two sorted event lists:
// arrivals ordered by start interval and departures ordered by departure
// time. The comparators are strict weak orderings on the timestamp ONLY, so
// ties are broken by std::sort's (unspecified but deterministic) permutation
// of the input order. Floating-point accumulation over the resident set
// follows the event order, which makes the tie permutation observable: the
// batch and streaming engines must call THIS helper — not a reimplementation
// — for their per-task arithmetic to be bit-identical.
//
// MachineTaskColumns hoists the sealed trace's flat columns once per pass
// and encodes the unified residency rule (trace.h): a task occupies
// [start, departure) with departure == max(start + runtime, start + 1), so
// zero-length tasks are resident for exactly one interval.

#ifndef CRF_TRACE_MACHINE_EVENTS_H_
#define CRF_TRACE_MACHINE_EVENTS_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "crf/trace/trace.h"
#include "crf/util/time_grid.h"

namespace crf {

// Raw columns of a sealed trace, hoisted once per machine pass so the
// per-interval loops touch flat arrays only.
struct MachineTaskColumns {
  explicit MachineTaskColumns(const CellTrace& cell)
      : start(cell.task_starts()),
        limit(cell.task_limits()),
        id(cell.task_ids()),
        offsets(cell.usage_offsets()),
        usage(cell.usage_arena()) {}

  std::span<const Interval> start;
  std::span<const double> limit;
  std::span<const TaskId> id;
  std::span<const uint64_t> offsets;
  std::span<const float> usage;

  Interval DepartureTime(int32_t i) const {
    const Interval runtime = static_cast<Interval>(offsets[i + 1] - offsets[i]);
    return std::max(start[i] + runtime, start[i] + 1);
  }
  double UsageAt(int32_t i, Interval tau) const {
    const int64_t k = static_cast<int64_t>(tau) - start[i];
    const uint64_t n = offsets[i + 1] - offsets[i];
    return k >= 0 && static_cast<uint64_t>(k) < n
               ? static_cast<double>(usage[offsets[i] + static_cast<uint64_t>(k)])
               : 0.0;
  }
};

// Fills `arrivals` with `task_indices` sorted by start and `departures` with
// `task_indices` sorted by departure time. Reuses the vectors' capacity.
void BuildMachineEventLists(const MachineTaskColumns& cols,
                            std::span<const int32_t> task_indices,
                            std::vector<int32_t>& arrivals,
                            std::vector<int32_t>& departures);

}  // namespace crf

#endif  // CRF_TRACE_MACHINE_EVENTS_H_
