#include "crf/trace/generator.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "crf/index/capacity_index.h"
#include "crf/trace/job_sampler.h"
#include "crf/trace/stream_writer.h"
#include "crf/trace/trace_builder.h"
#include "crf/trace/workload_model.h"
#include "crf/util/check.h"

namespace crf {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - since)
      .count();
}

// Generator-side sharded placement (DESIGN.md §"Sharded placement"): one
// headroom treap per contiguous machine shard. The treap key is the
// remaining allocation headroom target_alloc_ratio*capacity - alloc, so the
// feasibility filter ("which machines can still take this limit") is a rank
// query; the packing objective among the probed candidates stays the
// generator's weighted worst-fit ratio alloc/(capacity*weight), with the
// same prefer-unused anti-affinity rule as the global PlaceTask pass.
//
// Batches place in three phases mirroring crf/cluster/sharded_scheduler:
// serial routing by job id, a parallel shard phase (each shard advances only
// its own treap/RNG), and a serial shard-order steal phase for requests that
// missed their home shard — richest-summary-first with a try-everything
// fallback, so a task drops only if no shard can hold it. For a fixed
// (seed, shards) the placements are byte-identical at any thread count.
class ShardedPlacer {
 public:
  struct Request {
    double limit = 0.0;
    std::vector<int>* used = nullptr;  // job's machines; appended on success
    uint64_t affinity_key = 0;
  };

  ShardedPlacer(const CellProfile& profile, const GeneratorOptions& options,
                const CellTraceBuilder& builder, std::vector<double>& alloc,
                const std::vector<double>& machine_weight, const Rng& rng)
      : options_(options),
        builder_(builder),
        alloc_(alloc),
        weight_(machine_weight),
        target_ratio_(profile.target_alloc_ratio) {
    const int num_machines = profile.num_machines;
    const int64_t num_shards = options.placement_shards;
    CRF_CHECK_GE(num_shards, 1);
    CRF_CHECK_GE(options.placement_rebalance_interval, 1);
    shards_.reserve(num_shards);
    for (int s = 0; s < static_cast<int>(num_shards); ++s) {
      auto shard = std::make_unique<Shard>();
      shard->base = static_cast<int>(static_cast<int64_t>(num_machines) * s / num_shards);
      const int end =
          static_cast<int>(static_cast<int64_t>(num_machines) * (s + 1) / num_shards);
      shard->count = end - shard->base;
      shard->rng = rng.Fork(0x73686100ULL + static_cast<uint64_t>(s));  // "sha" + s
      shard->headroom.resize(shard->count);
      for (int i = 0; i < shard->count; ++i) {
        shard->headroom[i] = Headroom(shard->base + i);
      }
      shard->tree.Assign(shard->headroom);
      if (shard->count > 0) {
        nonempty_.push_back(s);
      }
      shards_.push_back(std::move(shard));
    }
    tried_.assign(shards_.size(), 0);
    RefreshSummaries();
  }

  // Re-syncs one machine's headroom after its alloc changed outside a
  // placement (departure credits).
  void Refresh(int machine) {
    Shard& shard = ShardOf(machine);
    const int local = machine - shard.base;
    shard.headroom[local] = Headroom(machine);
    shard.tree.Update(local, shard.headroom[local]);
  }

  void PlaceBatch(std::span<const Request> requests, std::span<int> results,
                  ThreadPool* pool) {
    CRF_CHECK_EQ(requests.size(), results.size());
    ++batches_;
    const bool rebalance_due = batches_ % options_.placement_rebalance_interval == 0;
    for (size_t i = 0; i < results.size(); ++i) {
      results[i] = -1;
    }
    if (requests.empty() || nonempty_.empty()) {
      if (rebalance_due && !nonempty_.empty()) {
        RefreshSummaries();
      }
      return;
    }
    for (const int s : nonempty_) {
      shards_[s]->routed.clear();
      shards_[s]->overflow.clear();
    }
    for (size_t i = 0; i < requests.size(); ++i) {
      const int s = nonempty_[requests[i].affinity_key % nonempty_.size()];
      shards_[s]->routed.push_back(static_cast<int>(i));
    }

    const auto shard_phase = [&](int, int begin, int end) {
      for (int k = begin; k < end; ++k) {
        Shard& shard = *shards_[nonempty_[k]];
        for (const int i : shard.routed) {
          const int machine = PlaceOnShard(shard, requests[i]);
          if (machine >= 0) {
            results[i] = machine;
          } else {
            shard.overflow.push_back(i);
          }
        }
      }
    };
    const int n = static_cast<int>(nonempty_.size());
    if (pool != nullptr && pool->num_threads() > 1 && n > 1) {
      pool->ParallelForRanges(n, 1, shard_phase);
    } else {
      shard_phase(0, 0, n);
    }

    for (const int s : nonempty_) {
      for (const int i : shards_[s]->overflow) {
        const Request& request = requests[i];
        std::fill(tried_.begin(), tried_.end(), static_cast<uint8_t>(0));
        tried_[s] = 1;
        int machine = -1;
        for (const int t : steal_order_) {
          if (tried_[t] || shards_[t]->max_headroom_summary < request.limit) {
            continue;
          }
          tried_[t] = 1;
          machine = PlaceOnShard(*shards_[t], request);
          if (machine >= 0) {
            break;
          }
        }
        if (machine < 0) {
          // Summaries may be stale; try every remaining shard before
          // declaring the task unplaceable.
          for (const int t : steal_order_) {
            if (tried_[t]) {
              continue;
            }
            tried_[t] = 1;
            machine = PlaceOnShard(*shards_[t], request);
            if (machine >= 0) {
              break;
            }
          }
        }
        if (machine >= 0) {
          results[i] = machine;
          ++stolen_placements_;
        }
      }
    }

    if (rebalance_due) {
      RefreshSummaries();
    }
  }

  int64_t stolen_placements() const { return stolen_placements_; }

 private:
  struct alignas(64) Shard {
    int base = 0;
    int count = 0;
    Rng rng{0};  // replaced by the per-shard fork at construction
    std::vector<double> headroom;  // target*capacity - alloc, local index
    CapacityTournamentTree tree;   // keyed by headroom
    double max_headroom_summary = 0.0;
    std::vector<int> routed;
    std::vector<int> overflow;
  };

  double Headroom(int machine) const {
    return target_ratio_ * builder_.machine_capacity(machine) - alloc_[machine];
  }

  Shard& ShardOf(int machine) {
    const int64_t num_shards = static_cast<int64_t>(shards_.size());
    const int64_t num_machines = static_cast<int64_t>(alloc_.size());
    // Shard ranges are floor(s*M/S)..floor((s+1)*M/S); invert with one
    // division and correct for the floor rounding.
    int s = static_cast<int>(static_cast<int64_t>(machine) * num_shards / num_machines);
    while (machine < shards_[s]->base) {
      --s;
    }
    while (machine >= shards_[s]->base + shards_[s]->count) {
      ++s;
    }
    return *shards_[s];
  }

  void RefreshSummaries() {
    for (const int s : nonempty_) {
      Shard& shard = *shards_[s];
      shard.max_headroom_summary = shard.headroom[shard.tree.MachineAtRank(shard.count - 1)];
    }
    steal_order_ = nonempty_;
    std::stable_sort(steal_order_.begin(), steal_order_.end(), [this](int a, int b) {
      return shards_[a]->max_headroom_summary > shards_[b]->max_headroom_summary;
    });
  }

  // One shard-local placement attempt: filter to feasible-by-headroom
  // machines via the treap, probe placement_probes of them (or walk all of
  // them when probing is off or the feasible set is small), pick the best
  // weighted ratio preferring machines the job does not already use, then
  // debit. Draws from the shard RNG only.
  int PlaceOnShard(Shard& shard, const Request& request) {
    if (shard.count == 0) {
      return -1;
    }
    const int feasible_begin = shard.tree.RankOfKey(request.limit, -1);
    const int feasible = shard.count - feasible_begin;
    if (feasible <= 0) {
      return -1;
    }
    int best = -1;
    int best_used = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    double best_used_ratio = std::numeric_limits<double>::infinity();
    const auto consider = [&](int local) {
      const int m = shard.base + local;
      const double capacity = builder_.machine_capacity(m);
      // Headroom feasibility does not imply the limit fits the machine when
      // target_alloc_ratio > 1.
      if (request.limit > capacity) {
        return;
      }
      const double ratio = alloc_[m] / (capacity * weight_[m]);
      const bool used = request.used != nullptr &&
                        std::find(request.used->begin(), request.used->end(), m) !=
                            request.used->end();
      if (used) {
        if (ratio < best_used_ratio) {
          best_used_ratio = ratio;
          best_used = local;
        }
      } else if (ratio < best_ratio) {
        best_ratio = ratio;
        best = local;
      }
    };
    const int probes = options_.placement_probes;
    if (probes > 0 && probes < feasible) {
      for (int k = 0; k < probes; ++k) {
        consider(shard.tree.MachineAtRank(
            feasible_begin + static_cast<int>(shard.rng.UniformInt(feasible))));
      }
    } else {
      for (int rank = feasible_begin; rank < shard.count; ++rank) {
        consider(shard.tree.MachineAtRank(rank));
      }
    }
    const int chosen = best >= 0 ? best : best_used;
    if (chosen < 0) {
      return -1;
    }
    const int machine = shard.base + chosen;
    alloc_[machine] += request.limit;
    shard.headroom[chosen] = Headroom(machine);
    shard.tree.Update(chosen, shard.headroom[chosen]);
    if (request.used != nullptr) {
      request.used->push_back(machine);
    }
    return machine;
  }

  const GeneratorOptions& options_;
  const CellTraceBuilder& builder_;
  std::vector<double>& alloc_;
  const std::vector<double>& weight_;
  const double target_ratio_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> nonempty_;
  std::vector<int> steal_order_;
  std::vector<uint8_t> tried_;
  int64_t batches_ = 0;
  int64_t stolen_placements_ = 0;
};

class Generator {
 public:
  Generator(const CellProfile& profile, const GeneratorOptions& options, const Rng& rng)
      : profile_(profile),
        options_(options),
        sampler_(profile, rng.Fork(0x6a6f62)),  // "job"
        arrival_rng_(rng.Fork(0x617272)),       // "arr"
        placement_rng_(rng.Fork(0x706c63)),     // "plc"
        usage_rng_(rng.Fork(0x757367)) {}       // "usg"

  CellTrace Run() {
    RunPlacementPhase();
    GenerateUsage();
    return builder_.Seal();
  }

  // Streaming variant: identical placement phase (same RNG draws, same
  // placements), then usage generation machine by machine straight into a
  // StreamingTraceWriter, so resident memory tracks the machine blocks in
  // flight rather than the whole cell.
  bool RunStreaming(const std::string& path, std::string* error, StreamedTraceInfo* info) {
    RunPlacementPhase();
    if (!StreamUsageToFile(path, error, info)) {
      return false;
    }
    if (info != nullptr) {
      info->placement_ms = placement_ms_;
      info->placement_attempts = builder_.num_tasks() + builder_.dropped_tasks();
    }
    return true;
  }

  PlacementPhaseStats MeasurePlacement() {
    RunPlacementPhase();
    PlacementPhaseStats stats;
    stats.tasks_placed = builder_.num_tasks();
    stats.dropped_tasks = builder_.dropped_tasks();
    stats.placement_attempts = stats.tasks_placed + stats.dropped_tasks;
    stats.placement_ms = placement_ms_;
    double stranded = 0.0;
    double target_total = 0.0;
    for (int m = 0; m < profile_.num_machines; ++m) {
      const double target = profile_.target_alloc_ratio * builder_.machine_capacity(m);
      target_total += target;
      stranded += std::max(0.0, target - alloc_[m]);
    }
    stats.stranded_fraction = target_total > 0.0 ? stranded / target_total : 0.0;
    return stats;
  }

 private:
  void RunPlacementPhase() {
    const auto started = std::chrono::steady_clock::now();
    InitMachines();
    InitialFill();
    ArrivalSweep();
    placement_ms_ = ElapsedMs(started);
  }

  void InitMachines() {
    builder_.Reset(profile_.name, options_.num_intervals, profile_.num_machines);
    for (int m = 0; m < profile_.num_machines; ++m) {
      builder_.set_machine_capacity(m, profile_.machine_capacity);
    }
    alloc_.assign(profile_.num_machines, 0.0);
    machine_weight_.resize(profile_.num_machines);
    for (auto& weight : machine_weight_) {
      weight = placement_rng_.LogNormal(0.0, profile_.machine_imbalance_sigma);
    }
    departures_.assign(options_.num_intervals + 1, {});
    departure_counts_.assign(options_.num_intervals + 1, 0);
    departure_sum_.assign(profile_.num_machines, 0.0);
    departure_epoch_.assign(profile_.num_machines, -1);
    if (options_.placement_shards > 0) {
      // The shard RNGs fork from the placement stream after the machine
      // weights are drawn, so (seed, shards) fully determines them.
      placer_ = std::make_unique<ShardedPlacer>(profile_, options_, builder_, alloc_,
                                                machine_weight_, placement_rng_);
    } else {
      placer_.reset();
    }
  }

  // Worst-fit placement: the feasible machine with the lowest weighted
  // allocation ratio, preferring machines not already hosting a task of this
  // job (spreading, a stand-in for Borg's anti-affinity). The static
  // per-machine weight skews packing so some machines run persistently
  // fuller than others, like a production cell.
  int PlaceTask(double limit, const std::vector<int>& machines_used_by_job) {
    int best = -1;
    int best_used = -1;  // Fallback if every feasible machine hosts the job.
    double best_ratio = std::numeric_limits<double>::infinity();
    double best_used_ratio = std::numeric_limits<double>::infinity();
    const int num_machines = profile_.num_machines;
    const auto consider = [&](int m) {
      const double capacity = builder_.machine_capacity(m);
      if (limit > capacity || alloc_[m] + limit > profile_.target_alloc_ratio * capacity) {
        return;
      }
      const double ratio = alloc_[m] / (capacity * machine_weight_[m]);
      const bool used =
          std::find(machines_used_by_job.begin(), machines_used_by_job.end(), m) !=
          machines_used_by_job.end();
      if (used) {
        if (ratio < best_used_ratio) {
          best_used_ratio = ratio;
          best_used = m;
        }
      } else if (ratio < best_ratio) {
        best_ratio = ratio;
        best = m;
      }
    };
    if (options_.placement_probes > 0 && options_.placement_probes < num_machines) {
      // Bounded-probe worst-fit for cloud-scale cells: sample a fixed number
      // of machines instead of scanning all of them. Duplicate probes are
      // harmless (same candidate considered twice).
      for (int k = 0; k < options_.placement_probes; ++k) {
        consider(static_cast<int>(placement_rng_.UniformInt(num_machines)));
      }
    } else {
      // Scan from a random offset so ties do not always favor machine 0.
      const int offset = static_cast<int>(placement_rng_.UniformInt(num_machines));
      for (int k = 0; k < num_machines; ++k) {
        consider((k + offset) % num_machines);
      }
    }
    return best >= 0 ? best : best_used;
  }

  // Registers one placed task: trace row, usage reservation, per-task
  // params, departure bucket. `machine` is already chosen (and, in sharded
  // mode, already debited and appended to the job's used list).
  void CommitPlacedTask(const JobTemplate& job, int machine, Interval start,
                        Interval runtime) {
    const int32_t task_index = builder_.AddTask(next_task_id_++, job.job_id,
                                                static_cast<int32_t>(machine), start, job.limit,
                                                job.sched_class);
    builder_.ReserveUsage(task_index, runtime);
    task_params_.push_back(sampler_.JitterTaskParams(job.params));

    const Interval end = start + runtime;
    CRF_CHECK_LE(end, options_.num_intervals);
    departures_[end].push_back({static_cast<int32_t>(machine), job.limit});
    ++departure_counts_[end];
    ++resident_count_;

    runtimes_.push_back(runtime);
  }

  // Creates, places, and registers one task (serial reference path).
  // Returns true if placed.
  bool SpawnTask(const JobTemplate& job, Interval start, Interval runtime,
                 std::vector<int>& machines_used_by_job) {
    const int machine = PlaceTask(job.limit, machines_used_by_job);
    if (machine < 0) {
      builder_.AddDroppedTask();
      return false;
    }
    machines_used_by_job.push_back(machine);
    alloc_[machine] += job.limit;
    CommitPlacedTask(job, machine, start, runtime);
    return true;
  }

  // Sharded batch path: place every sampled task of batch_jobs_/batch_tasks_
  // through the ShardedPlacer, then commit in batch order. The commit is
  // serial, so the sampler's JitterTaskParams draws happen in a fixed order
  // — batch order — regardless of which shard or thread placed each task.
  void PlaceAndCommitBatch(Interval start) {
    batch_requests_.clear();
    batch_requests_.reserve(batch_tasks_.size());
    for (const BatchTask& task : batch_tasks_) {
      BatchJob& job = batch_jobs_[task.job_index];
      batch_requests_.push_back(
          {job.job.limit, &job.used, static_cast<uint64_t>(job.job.job_id)});
    }
    batch_results_.assign(batch_tasks_.size(), -1);
    placer_->PlaceBatch(batch_requests_, batch_results_, options_.pool);
    for (size_t i = 0; i < batch_tasks_.size(); ++i) {
      const BatchTask& task = batch_tasks_[i];
      BatchJob& job = batch_jobs_[task.job_index];
      const int machine = batch_results_[i];
      if (machine < 0) {
        builder_.AddDroppedTask();
        continue;
      }
      job.any_placed = true;
      CommitPlacedTask(job.job, machine, start, task.runtime);
    }
  }

  void InitialFill() {
    const int64_t target =
        static_cast<int64_t>(profile_.tasks_per_machine * profile_.num_machines);
    int64_t consecutive_failures = 0;
    if (placer_ == nullptr) {
      while (resident_count_ < target && consecutive_failures < 64) {
        const JobTemplate job = sampler_.NextJob();
        const bool service = arrival_rng_.Bernoulli(profile_.service_fraction);
        const int num_tasks = sampler_.SampleTasksPerJob();
        std::vector<int> used;
        bool any_placed = false;
        for (int i = 0; i < num_tasks; ++i) {
          const Interval runtime = sampler_.SampleRuntime(service, 0, options_.num_intervals);
          any_placed |= SpawnTask(job, 0, runtime, used);
        }
        consecutive_failures = any_placed ? 0 : consecutive_failures + 1;
      }
      return;
    }
    // Sharded: sample jobs up to a batch's worth of tasks (assuming they all
    // place), place the batch shard-parallel, then apply the same
    // consecutive-failure cutoff per job in sampling order.
    constexpr int kFillBatchTasks = 4096;
    while (resident_count_ < target && consecutive_failures < 64) {
      batch_jobs_.clear();
      batch_tasks_.clear();
      int64_t projected = resident_count_;
      while (projected < target && static_cast<int>(batch_tasks_.size()) < kFillBatchTasks) {
        BatchJob batch_job;
        batch_job.job = sampler_.NextJob();
        batch_job.service = arrival_rng_.Bernoulli(profile_.service_fraction);
        const int num_tasks = sampler_.SampleTasksPerJob();
        const int job_index = static_cast<int>(batch_jobs_.size());
        batch_jobs_.push_back(std::move(batch_job));
        for (int i = 0; i < num_tasks; ++i) {
          batch_tasks_.push_back({job_index, sampler_.SampleRuntime(batch_jobs_[job_index].service,
                                                                    0, options_.num_intervals)});
        }
        projected += num_tasks;
      }
      PlaceAndCommitBatch(0);
      for (const BatchJob& job : batch_jobs_) {
        consecutive_failures = job.any_placed ? 0 : consecutive_failures + 1;
      }
    }
  }

  void ArrivalSweep() {
    std::vector<int32_t> touched;
    for (Interval t = 1; t < options_.num_intervals; ++t) {
      resident_count_ -= departure_counts_[t];
      // Departures are bucketed by interval (O(tasks) total instead of the
      // old machines x intervals matrix). Per-machine limits are summed in
      // placement order — the same float-addition order the dense matrix
      // accumulated — and each machine is debited once, so allocations stay
      // bit-identical.
      touched.clear();
      for (const Departure& d : departures_[t]) {
        if (departure_epoch_[d.machine] != t) {
          departure_epoch_[d.machine] = t;
          departure_sum_[d.machine] = 0.0;
          touched.push_back(d.machine);
        }
        departure_sum_[d.machine] += d.limit;
      }
      for (const int32_t m : touched) {
        alloc_[m] -= departure_sum_[m];
      }
      if (placer_ != nullptr) {
        for (const int32_t m : touched) {
          placer_->Refresh(m);
        }
      }
      departures_[t] = {};  // bucket is spent; release its memory

      int arrivals = arrival_rng_.Poisson(ArrivalRate(profile_, t, resident_count_));
      if (placer_ == nullptr) {
        while (arrivals > 0) {
          const JobTemplate job = sampler_.NextJob();
          const int num_tasks = std::min(arrivals, sampler_.SampleTasksPerJob());
          std::vector<int> used;
          for (int i = 0; i < num_tasks; ++i) {
            SpawnTask(job, t,
                      sampler_.SampleRuntime(/*service=*/false, t, options_.num_intervals),
                      used);
          }
          arrivals -= num_tasks;
        }
      } else {
        // One placement batch per interval: every arriving task this
        // interval places shard-parallel against the same capacity view.
        batch_jobs_.clear();
        batch_tasks_.clear();
        while (arrivals > 0) {
          BatchJob batch_job;
          batch_job.job = sampler_.NextJob();
          const int num_tasks = std::min(arrivals, sampler_.SampleTasksPerJob());
          const int job_index = static_cast<int>(batch_jobs_.size());
          batch_jobs_.push_back(std::move(batch_job));
          for (int i = 0; i < num_tasks; ++i) {
            batch_tasks_.push_back(
                {job_index,
                 sampler_.SampleRuntime(/*service=*/false, t, options_.num_intervals)});
          }
          arrivals -= num_tasks;
        }
        PlaceAndCommitBatch(t);
      }
    }
  }

  void GenerateUsage() {
    const std::vector<double> shared_load =
        BuildSharedLoadSeries(profile_, options_.num_intervals, usage_rng_);

    const auto generate_machine = [&](int m) {
      std::array<double, kSubSamplesPerInterval> sub_samples;
      std::array<double, kSubSamplesPerInterval> machine_sums;
      std::vector<float>& true_peak = builder_.mutable_true_peak(m);
      true_peak.assign(options_.num_intervals, 0.0f);

      // Tasks sorted by start interval (placement already appends in start
      // order, but sorting keeps the invariant explicit).
      const std::span<const int32_t> placed = builder_.machine_tasks(m);
      std::vector<int32_t> order(placed.begin(), placed.end());
      std::sort(order.begin(), order.end(), [this](int32_t a, int32_t b) {
        return builder_.task_start(a) < builder_.task_start(b);
      });

      struct ActiveTask {
        int32_t task_index;
        Interval end;
        TaskUsageModel model;
      };
      std::vector<ActiveTask> active;
      size_t next = 0;

      for (Interval t = 0; t < options_.num_intervals; ++t) {
        // Retire ended tasks (swap-erase keeps this O(1) per departure; task
        // RNG streams are per-model, so processing order is irrelevant).
        for (size_t i = 0; i < active.size();) {
          if (active[i].end <= t) {
            active[i] = std::move(active.back());
            active.pop_back();
          } else {
            ++i;
          }
        }
        // Admit tasks starting now. The builder's usage series is still empty
        // here; the authoritative lifetime is the sampled runtime.
        while (next < order.size() && builder_.task_start(order[next]) == t) {
          const int32_t task_index = order[next++];
          active.push_back(
              {task_index, t + runtimes_[task_index],
               TaskUsageModel(task_params_[task_index], t,
                              usage_rng_.Fork(static_cast<uint64_t>(builder_.task_id(task_index))))});
        }

        machine_sums.fill(0.0);
        for (auto& entry : active) {
          entry.model.Step(sub_samples, shared_load[t]);
          const IntervalSummary summary = SummarizeInterval(sub_samples);
          builder_.AppendUsage(entry.task_index, summary.scalar_p90);
          if (options_.rich_stats) {
            builder_.AppendRich(entry.task_index, summary.rich);
          }
          for (int k = 0; k < kSubSamplesPerInterval; ++k) {
            machine_sums[k] += sub_samples[k];
          }
        }
        true_peak[t] =
            static_cast<float>(*std::max_element(machine_sums.begin(), machine_sums.end()));
      }
    };

    // Machines are independent (distinct trace rows, per-task RNG streams
    // forked from task ids), so the loop shards freely; the generated bytes
    // are identical at any pool size.
    ThreadPool* pool = options_.pool;
    if (pool != nullptr && pool->num_threads() > 1 && profile_.num_machines > 1) {
      pool->ParallelForRanges(profile_.num_machines, 1, [&](int, int begin, int end) {
        for (int m = begin; m < end; ++m) {
          generate_machine(m);
        }
      });
    } else {
      for (int m = 0; m < profile_.num_machines; ++m) {
        generate_machine(m);
      }
    }

    // Every task must have exactly runtime() worth of samples.
    for (int32_t i = 0; i < builder_.num_tasks(); ++i) {
      CRF_CHECK_EQ(builder_.task_runtime(i), runtimes_[i]);
    }
  }

  // Usage generation straight into a mapped file. Tasks are renumbered
  // machine-major (the concatenation of the per-machine placement lists);
  // within a machine the per-task series, the active-set evolution, and the
  // float-addition order of the machine sums all match GenerateUsage exactly
  // — task usage RNG streams are forked from the preserved task ids — so each
  // machine's usage rows and true-peak series are bit-identical to the batch
  // path's. Machines generate in chunks (pool-parallel when a pool is set;
  // every write lands in that machine's disjoint file rows) and completed
  // chunks are flushed and evicted before the next begins.
  bool StreamUsageToFile(const std::string& path, std::string* error, StreamedTraceInfo* info) {
    const int32_t n = builder_.num_tasks();
    const int num_machines = profile_.num_machines;

    std::vector<int32_t> old_of_new;
    old_of_new.reserve(n);
    for (int m = 0; m < num_machines; ++m) {
      const std::span<const int32_t> placed = builder_.machine_tasks(m);
      old_of_new.insert(old_of_new.end(), placed.begin(), placed.end());
    }
    CRF_CHECK_EQ(static_cast<int32_t>(old_of_new.size()), n)
        << "CSR rows must cover every task exactly once";

    std::vector<TaskId> task_id(n);
    std::vector<JobId> job_id(n);
    std::vector<int32_t> machine_of(n);
    std::vector<Interval> start(n);
    std::vector<uint8_t> sched_class(n);
    std::vector<double> limit(n);
    std::vector<Interval> runtime(n);
    for (int32_t i = 0; i < n; ++i) {
      const int32_t old = old_of_new[i];
      task_id[i] = builder_.task_id(old);
      job_id[i] = builder_.job_id(old);
      machine_of[i] = builder_.task_machine(old);
      start[i] = builder_.task_start(old);
      sched_class[i] = static_cast<uint8_t>(builder_.task_class(old));
      limit[i] = builder_.task_limit(old);
      runtime[i] = runtimes_[old];
    }
    const std::vector<Interval> true_peak_len(num_machines, options_.num_intervals);

    StreamTraceSpec spec;
    spec.name = profile_.name;
    spec.num_intervals = options_.num_intervals;
    spec.dropped_tasks = builder_.dropped_tasks();
    spec.rich = options_.rich_stats;
    spec.task_id = task_id;
    spec.job_id = job_id;
    spec.machine_of = machine_of;
    spec.start = start;
    spec.sched_class = sched_class;
    spec.limit = limit;
    spec.runtime = runtime;
    std::vector<double> capacity(num_machines);
    for (int m = 0; m < num_machines; ++m) {
      capacity[m] = builder_.machine_capacity(m);
    }
    spec.capacity = capacity;
    spec.true_peak_len = true_peak_len;

    StreamingTraceWriter writer(spec, path, error);
    if (!writer.ok()) {
      return false;
    }

    const std::vector<double> shared_load =
        BuildSharedLoadSeries(profile_, options_.num_intervals, usage_rng_);

    const auto stream_machine = [&](int m) {
      std::array<double, kSubSamplesPerInterval> sub_samples;
      std::array<double, kSubSamplesPerInterval> machine_sums;
      const int32_t task_begin = writer.machine_begin(m);
      const int32_t task_end = writer.machine_end(m);
      // Same sort as GenerateUsage: the new indices are order-isomorphic to
      // the placement list the batch path sorts, and the comparator sees the
      // identical key sequence, so std::sort produces the same permutation.
      std::vector<int32_t> order(task_end - task_begin);
      std::iota(order.begin(), order.end(), task_begin);
      std::sort(order.begin(), order.end(),
                [&start](int32_t a, int32_t b) { return start[a] < start[b]; });

      struct ActiveTask {
        int32_t task_index;
        Interval end;
        Interval written;
        TaskUsageModel model;
      };
      std::vector<ActiveTask> active;
      size_t next = 0;
      const std::span<float> peak_row = writer.true_peak_row(m);

      for (Interval t = 0; t < options_.num_intervals; ++t) {
        for (size_t i = 0; i < active.size();) {
          if (active[i].end <= t) {
            active[i] = std::move(active.back());
            active.pop_back();
          } else {
            ++i;
          }
        }
        while (next < order.size() && start[order[next]] == t) {
          const int32_t task_index = order[next++];
          const int32_t old = old_of_new[task_index];
          active.push_back(
              {task_index, t + runtimes_[old], 0,
               TaskUsageModel(task_params_[old], t,
                              usage_rng_.Fork(static_cast<uint64_t>(task_id[task_index])))});
        }

        machine_sums.fill(0.0);
        for (auto& entry : active) {
          entry.model.Step(sub_samples, shared_load[t]);
          const IntervalSummary summary = SummarizeInterval(sub_samples);
          writer.usage_row(entry.task_index)[entry.written] = summary.scalar_p90;
          if (options_.rich_stats) {
            const RichUsage& rich = summary.rich;
            writer.rich_row(entry.task_index, RichColumn::kAvg)[entry.written] = rich.avg;
            writer.rich_row(entry.task_index, RichColumn::kP50)[entry.written] = rich.p50;
            writer.rich_row(entry.task_index, RichColumn::kP60)[entry.written] = rich.p60;
            writer.rich_row(entry.task_index, RichColumn::kP70)[entry.written] = rich.p70;
            writer.rich_row(entry.task_index, RichColumn::kP80)[entry.written] = rich.p80;
            writer.rich_row(entry.task_index, RichColumn::kP90)[entry.written] = rich.p90;
            writer.rich_row(entry.task_index, RichColumn::kP95)[entry.written] = rich.p95;
            writer.rich_row(entry.task_index, RichColumn::kP99)[entry.written] = rich.p99;
            writer.rich_row(entry.task_index, RichColumn::kMax)[entry.written] = rich.max;
          }
          ++entry.written;
          for (int k = 0; k < kSubSamplesPerInterval; ++k) {
            machine_sums[k] += sub_samples[k];
          }
        }
        peak_row[t] =
            static_cast<float>(*std::max_element(machine_sums.begin(), machine_sums.end()));
      }
      CRF_CHECK_EQ(next, order.size());
      for (const ActiveTask& entry : active) {
        CRF_CHECK_EQ(entry.written, entry.end - builder_.task_start(old_of_new[entry.task_index]))
            << "task ran past the horizon without filling its row";
      }
    };

    // Chunked generation bounds residency: a chunk of machines is generated
    // (pool-parallel), then its pages are flushed and dropped before the
    // next chunk starts. At one thread this is the original 256-machine
    // retire cadence; with a pool the chunk scales with the thread count so
    // every worker has machines to claim.
    ThreadPool* pool = options_.pool;
    const bool parallel = pool != nullptr && pool->num_threads() > 1 && num_machines > 1;
    constexpr int kRetireBlock = 256;
    const int chunk = kRetireBlock * (parallel ? pool->num_threads() : 1);
    for (int base = 0; base < num_machines; base += chunk) {
      const int end = std::min(num_machines, base + chunk);
      if (parallel) {
        pool->ParallelForRanges(end - base, 1, [&](int, int begin, int stop) {
          for (int k = begin; k < stop; ++k) {
            stream_machine(base + k);
          }
        });
      } else {
        for (int m = base; m < end; ++m) {
          stream_machine(m);
        }
      }
      writer.RetireMachines(base, end);
    }
    if (!writer.Finish(error)) {
      return false;
    }
    if (info != nullptr) {
      info->num_tasks = n;
      info->dropped_tasks = builder_.dropped_tasks();
      info->file_bytes = writer.file_bytes();
    }
    return true;
  }

  const CellProfile& profile_;
  const GeneratorOptions& options_;
  JobSampler sampler_;
  Rng arrival_rng_;
  Rng placement_rng_;
  Rng usage_rng_;

  CellTraceBuilder builder_;
  std::vector<double> alloc_;
  std::vector<double> machine_weight_;
  std::unique_ptr<ShardedPlacer> placer_;
  struct Departure {
    int32_t machine;
    double limit;
  };
  std::vector<std::vector<Departure>> departures_;  // indexed by end interval
  std::vector<int64_t> departure_counts_;
  std::vector<double> departure_sum_;     // per-machine scratch for one sweep step
  std::vector<Interval> departure_epoch_; // interval the scratch entry is valid for
  std::vector<Interval> runtimes_;
  std::vector<TaskUsageParams> task_params_;

  // Batch scratch for the sharded path.
  struct BatchJob {
    JobTemplate job;
    bool service = false;
    bool any_placed = false;
    std::vector<int> used;
  };
  struct BatchTask {
    int job_index;
    Interval runtime;
  };
  std::vector<BatchJob> batch_jobs_;
  std::vector<BatchTask> batch_tasks_;
  std::vector<ShardedPlacer::Request> batch_requests_;
  std::vector<int> batch_results_;

  int64_t resident_count_ = 0;
  TaskId next_task_id_ = 1;
  double placement_ms_ = 0.0;
};

}  // namespace

CellTrace GenerateCellTrace(const CellProfile& profile, const GeneratorOptions& options,
                            const Rng& rng) {
  CRF_CHECK_GT(profile.num_machines, 0);
  CRF_CHECK_GT(options.num_intervals, 0);
  Generator generator(profile, options, rng);
  return generator.Run();
}

bool GenerateCellTraceToFile(const CellProfile& profile, const GeneratorOptions& options,
                             const Rng& rng, const std::string& path, std::string* error,
                             StreamedTraceInfo* info) {
  CRF_CHECK_GT(profile.num_machines, 0);
  CRF_CHECK_GT(options.num_intervals, 0);
  Generator generator(profile, options, rng);
  return generator.RunStreaming(path, error, info);
}

PlacementPhaseStats MeasurePlacementPhase(const CellProfile& profile,
                                          const GeneratorOptions& options, const Rng& rng) {
  CRF_CHECK_GT(profile.num_machines, 0);
  CRF_CHECK_GT(options.num_intervals, 0);
  Generator generator(profile, options, rng);
  return generator.MeasurePlacement();
}

}  // namespace crf
