#include "crf/trace/generator.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "crf/trace/job_sampler.h"
#include "crf/trace/stream_writer.h"
#include "crf/trace/trace_builder.h"
#include "crf/trace/workload_model.h"
#include "crf/util/check.h"

namespace crf {
namespace {

class Generator {
 public:
  Generator(const CellProfile& profile, const GeneratorOptions& options, const Rng& rng)
      : profile_(profile),
        options_(options),
        sampler_(profile, rng.Fork(0x6a6f62)),  // "job"
        arrival_rng_(rng.Fork(0x617272)),       // "arr"
        placement_rng_(rng.Fork(0x706c63)),     // "plc"
        usage_rng_(rng.Fork(0x757367)) {}       // "usg"

  CellTrace Run() {
    InitMachines();
    InitialFill();
    ArrivalSweep();
    GenerateUsage();
    return builder_.Seal();
  }

  // Streaming variant: identical placement phase (same RNG draws, same
  // placements), then usage generation machine by machine straight into a
  // StreamingTraceWriter, so resident memory tracks the machine block in
  // flight rather than the whole cell.
  bool RunStreaming(const std::string& path, std::string* error, StreamedTraceInfo* info) {
    InitMachines();
    InitialFill();
    ArrivalSweep();
    return StreamUsageToFile(path, error, info);
  }

 private:
  void InitMachines() {
    builder_.Reset(profile_.name, options_.num_intervals, profile_.num_machines);
    for (int m = 0; m < profile_.num_machines; ++m) {
      builder_.set_machine_capacity(m, profile_.machine_capacity);
    }
    alloc_.assign(profile_.num_machines, 0.0);
    machine_weight_.resize(profile_.num_machines);
    for (auto& weight : machine_weight_) {
      weight = placement_rng_.LogNormal(0.0, profile_.machine_imbalance_sigma);
    }
    departures_.assign(options_.num_intervals + 1, {});
    departure_counts_.assign(options_.num_intervals + 1, 0);
    departure_sum_.assign(profile_.num_machines, 0.0);
    departure_epoch_.assign(profile_.num_machines, -1);
  }

  // Worst-fit placement: the feasible machine with the lowest weighted
  // allocation ratio, preferring machines not already hosting a task of this
  // job (spreading, a stand-in for Borg's anti-affinity). The static
  // per-machine weight skews packing so some machines run persistently
  // fuller than others, like a production cell.
  int PlaceTask(double limit, const std::vector<int>& machines_used_by_job) {
    int best = -1;
    int best_used = -1;  // Fallback if every feasible machine hosts the job.
    double best_ratio = std::numeric_limits<double>::infinity();
    double best_used_ratio = std::numeric_limits<double>::infinity();
    const int num_machines = profile_.num_machines;
    const auto consider = [&](int m) {
      const double capacity = builder_.machine_capacity(m);
      if (limit > capacity || alloc_[m] + limit > profile_.target_alloc_ratio * capacity) {
        return;
      }
      const double ratio = alloc_[m] / (capacity * machine_weight_[m]);
      const bool used =
          std::find(machines_used_by_job.begin(), machines_used_by_job.end(), m) !=
          machines_used_by_job.end();
      if (used) {
        if (ratio < best_used_ratio) {
          best_used_ratio = ratio;
          best_used = m;
        }
      } else if (ratio < best_ratio) {
        best_ratio = ratio;
        best = m;
      }
    };
    if (options_.placement_probes > 0 && options_.placement_probes < num_machines) {
      // Bounded-probe worst-fit for cloud-scale cells: sample a fixed number
      // of machines instead of scanning all of them. Duplicate probes are
      // harmless (same candidate considered twice).
      for (int k = 0; k < options_.placement_probes; ++k) {
        consider(static_cast<int>(placement_rng_.UniformInt(num_machines)));
      }
    } else {
      // Scan from a random offset so ties do not always favor machine 0.
      const int offset = static_cast<int>(placement_rng_.UniformInt(num_machines));
      for (int k = 0; k < num_machines; ++k) {
        consider((k + offset) % num_machines);
      }
    }
    return best >= 0 ? best : best_used;
  }

  // Creates, places, and registers one task. Returns true if placed.
  bool SpawnTask(const JobTemplate& job, Interval start, Interval runtime,
                 std::vector<int>& machines_used_by_job) {
    const int machine = PlaceTask(job.limit, machines_used_by_job);
    if (machine < 0) {
      builder_.AddDroppedTask();
      return false;
    }
    machines_used_by_job.push_back(machine);

    const int32_t task_index = builder_.AddTask(next_task_id_++, job.job_id,
                                                static_cast<int32_t>(machine), start, job.limit,
                                                job.sched_class);
    builder_.ReserveUsage(task_index, runtime);
    task_params_.push_back(sampler_.JitterTaskParams(job.params));

    alloc_[machine] += job.limit;
    const Interval end = start + runtime;
    CRF_CHECK_LE(end, options_.num_intervals);
    departures_[end].push_back({static_cast<int32_t>(machine), job.limit});
    ++departure_counts_[end];
    ++resident_count_;

    runtimes_.push_back(runtime);
    return true;
  }

  void InitialFill() {
    const int64_t target =
        static_cast<int64_t>(profile_.tasks_per_machine * profile_.num_machines);
    int64_t consecutive_failures = 0;
    while (resident_count_ < target && consecutive_failures < 64) {
      const JobTemplate job = sampler_.NextJob();
      const bool service = arrival_rng_.Bernoulli(profile_.service_fraction);
      const int num_tasks = sampler_.SampleTasksPerJob();
      std::vector<int> used;
      bool any_placed = false;
      for (int i = 0; i < num_tasks; ++i) {
        const Interval runtime = sampler_.SampleRuntime(service, 0, options_.num_intervals);
        any_placed |= SpawnTask(job, 0, runtime, used);
      }
      consecutive_failures = any_placed ? 0 : consecutive_failures + 1;
    }
  }

  void ArrivalSweep() {
    std::vector<int32_t> touched;
    for (Interval t = 1; t < options_.num_intervals; ++t) {
      resident_count_ -= departure_counts_[t];
      // Departures are bucketed by interval (O(tasks) total instead of the
      // old machines x intervals matrix). Per-machine limits are summed in
      // placement order — the same float-addition order the dense matrix
      // accumulated — and each machine is debited once, so allocations stay
      // bit-identical.
      touched.clear();
      for (const Departure& d : departures_[t]) {
        if (departure_epoch_[d.machine] != t) {
          departure_epoch_[d.machine] = t;
          departure_sum_[d.machine] = 0.0;
          touched.push_back(d.machine);
        }
        departure_sum_[d.machine] += d.limit;
      }
      for (const int32_t m : touched) {
        alloc_[m] -= departure_sum_[m];
      }
      departures_[t] = {};  // bucket is spent; release its memory

      int arrivals = arrival_rng_.Poisson(ArrivalRate(profile_, t, resident_count_));
      while (arrivals > 0) {
        const JobTemplate job = sampler_.NextJob();
        const int num_tasks = std::min(arrivals, sampler_.SampleTasksPerJob());
        std::vector<int> used;
        for (int i = 0; i < num_tasks; ++i) {
          SpawnTask(job, t,
                    sampler_.SampleRuntime(/*service=*/false, t, options_.num_intervals), used);
        }
        arrivals -= num_tasks;
      }
    }
  }

  void GenerateUsage() {
    const std::vector<double> shared_load =
        BuildSharedLoadSeries(profile_, options_.num_intervals, usage_rng_);
    std::array<double, kSubSamplesPerInterval> sub_samples;
    std::array<double, kSubSamplesPerInterval> machine_sums;

    for (int m = 0; m < profile_.num_machines; ++m) {
      std::vector<float>& true_peak = builder_.mutable_true_peak(m);
      true_peak.assign(options_.num_intervals, 0.0f);

      // Tasks sorted by start interval (placement already appends in start
      // order, but sorting keeps the invariant explicit).
      const std::span<const int32_t> placed = builder_.machine_tasks(m);
      std::vector<int32_t> order(placed.begin(), placed.end());
      std::sort(order.begin(), order.end(), [this](int32_t a, int32_t b) {
        return builder_.task_start(a) < builder_.task_start(b);
      });

      struct ActiveTask {
        int32_t task_index;
        Interval end;
        TaskUsageModel model;
      };
      std::vector<ActiveTask> active;
      size_t next = 0;

      for (Interval t = 0; t < options_.num_intervals; ++t) {
        // Retire ended tasks (swap-erase keeps this O(1) per departure; task
        // RNG streams are per-model, so processing order is irrelevant).
        for (size_t i = 0; i < active.size();) {
          if (active[i].end <= t) {
            active[i] = std::move(active.back());
            active.pop_back();
          } else {
            ++i;
          }
        }
        // Admit tasks starting now. The builder's usage series is still empty
        // here; the authoritative lifetime is the sampled runtime.
        while (next < order.size() && builder_.task_start(order[next]) == t) {
          const int32_t task_index = order[next++];
          active.push_back(
              {task_index, t + runtimes_[task_index],
               TaskUsageModel(task_params_[task_index], t,
                              usage_rng_.Fork(static_cast<uint64_t>(builder_.task_id(task_index))))});
        }

        machine_sums.fill(0.0);
        for (auto& entry : active) {
          entry.model.Step(sub_samples, shared_load[t]);
          const IntervalSummary summary = SummarizeInterval(sub_samples);
          builder_.AppendUsage(entry.task_index, summary.scalar_p90);
          if (options_.rich_stats) {
            builder_.AppendRich(entry.task_index, summary.rich);
          }
          for (int k = 0; k < kSubSamplesPerInterval; ++k) {
            machine_sums[k] += sub_samples[k];
          }
        }
        true_peak[t] =
            static_cast<float>(*std::max_element(machine_sums.begin(), machine_sums.end()));
      }
    }

    // Every task must have exactly runtime() worth of samples.
    for (int32_t i = 0; i < builder_.num_tasks(); ++i) {
      CRF_CHECK_EQ(builder_.task_runtime(i), runtimes_[i]);
    }
  }

  // Usage generation straight into a mapped file. Tasks are renumbered
  // machine-major (the concatenation of the per-machine placement lists);
  // within a machine the per-task series, the active-set evolution, and the
  // float-addition order of the machine sums all match GenerateUsage exactly
  // — task usage RNG streams are forked from the preserved task ids — so each
  // machine's usage rows and true-peak series are bit-identical to the batch
  // path's. Completed machine blocks are flushed and evicted as they finish.
  bool StreamUsageToFile(const std::string& path, std::string* error, StreamedTraceInfo* info) {
    const int32_t n = builder_.num_tasks();
    const int num_machines = profile_.num_machines;

    std::vector<int32_t> old_of_new;
    old_of_new.reserve(n);
    for (int m = 0; m < num_machines; ++m) {
      const std::span<const int32_t> placed = builder_.machine_tasks(m);
      old_of_new.insert(old_of_new.end(), placed.begin(), placed.end());
    }
    CRF_CHECK_EQ(static_cast<int32_t>(old_of_new.size()), n)
        << "CSR rows must cover every task exactly once";

    std::vector<TaskId> task_id(n);
    std::vector<JobId> job_id(n);
    std::vector<int32_t> machine_of(n);
    std::vector<Interval> start(n);
    std::vector<uint8_t> sched_class(n);
    std::vector<double> limit(n);
    std::vector<Interval> runtime(n);
    for (int32_t i = 0; i < n; ++i) {
      const int32_t old = old_of_new[i];
      task_id[i] = builder_.task_id(old);
      job_id[i] = builder_.job_id(old);
      machine_of[i] = builder_.task_machine(old);
      start[i] = builder_.task_start(old);
      sched_class[i] = static_cast<uint8_t>(builder_.task_class(old));
      limit[i] = builder_.task_limit(old);
      runtime[i] = runtimes_[old];
    }
    const std::vector<Interval> true_peak_len(num_machines, options_.num_intervals);

    StreamTraceSpec spec;
    spec.name = profile_.name;
    spec.num_intervals = options_.num_intervals;
    spec.dropped_tasks = builder_.dropped_tasks();
    spec.rich = options_.rich_stats;
    spec.task_id = task_id;
    spec.job_id = job_id;
    spec.machine_of = machine_of;
    spec.start = start;
    spec.sched_class = sched_class;
    spec.limit = limit;
    spec.runtime = runtime;
    std::vector<double> capacity(num_machines);
    for (int m = 0; m < num_machines; ++m) {
      capacity[m] = builder_.machine_capacity(m);
    }
    spec.capacity = capacity;
    spec.true_peak_len = true_peak_len;

    StreamingTraceWriter writer(spec, path, error);
    if (!writer.ok()) {
      return false;
    }

    const std::vector<double> shared_load =
        BuildSharedLoadSeries(profile_, options_.num_intervals, usage_rng_);
    std::array<double, kSubSamplesPerInterval> sub_samples;
    std::array<double, kSubSamplesPerInterval> machine_sums;

    constexpr int kRetireBlock = 256;
    int retired = 0;
    for (int m = 0; m < num_machines; ++m) {
      const int32_t task_begin = writer.machine_begin(m);
      const int32_t task_end = writer.machine_end(m);
      // Same sort as GenerateUsage: the new indices are order-isomorphic to
      // the placement list the batch path sorts, and the comparator sees the
      // identical key sequence, so std::sort produces the same permutation.
      std::vector<int32_t> order(task_end - task_begin);
      std::iota(order.begin(), order.end(), task_begin);
      std::sort(order.begin(), order.end(),
                [&start](int32_t a, int32_t b) { return start[a] < start[b]; });

      struct ActiveTask {
        int32_t task_index;
        Interval end;
        Interval written;
        TaskUsageModel model;
      };
      std::vector<ActiveTask> active;
      size_t next = 0;
      const std::span<float> peak_row = writer.true_peak_row(m);

      for (Interval t = 0; t < options_.num_intervals; ++t) {
        for (size_t i = 0; i < active.size();) {
          if (active[i].end <= t) {
            active[i] = std::move(active.back());
            active.pop_back();
          } else {
            ++i;
          }
        }
        while (next < order.size() && start[order[next]] == t) {
          const int32_t task_index = order[next++];
          const int32_t old = old_of_new[task_index];
          active.push_back(
              {task_index, t + runtimes_[old], 0,
               TaskUsageModel(task_params_[old], t,
                              usage_rng_.Fork(static_cast<uint64_t>(task_id[task_index])))});
        }

        machine_sums.fill(0.0);
        for (auto& entry : active) {
          entry.model.Step(sub_samples, shared_load[t]);
          const IntervalSummary summary = SummarizeInterval(sub_samples);
          writer.usage_row(entry.task_index)[entry.written] = summary.scalar_p90;
          if (options_.rich_stats) {
            const RichUsage& rich = summary.rich;
            writer.rich_row(entry.task_index, RichColumn::kAvg)[entry.written] = rich.avg;
            writer.rich_row(entry.task_index, RichColumn::kP50)[entry.written] = rich.p50;
            writer.rich_row(entry.task_index, RichColumn::kP60)[entry.written] = rich.p60;
            writer.rich_row(entry.task_index, RichColumn::kP70)[entry.written] = rich.p70;
            writer.rich_row(entry.task_index, RichColumn::kP80)[entry.written] = rich.p80;
            writer.rich_row(entry.task_index, RichColumn::kP90)[entry.written] = rich.p90;
            writer.rich_row(entry.task_index, RichColumn::kP95)[entry.written] = rich.p95;
            writer.rich_row(entry.task_index, RichColumn::kP99)[entry.written] = rich.p99;
            writer.rich_row(entry.task_index, RichColumn::kMax)[entry.written] = rich.max;
          }
          ++entry.written;
          for (int k = 0; k < kSubSamplesPerInterval; ++k) {
            machine_sums[k] += sub_samples[k];
          }
        }
        peak_row[t] =
            static_cast<float>(*std::max_element(machine_sums.begin(), machine_sums.end()));
      }
      CRF_CHECK_EQ(next, order.size());
      for (const ActiveTask& entry : active) {
        CRF_CHECK_EQ(entry.written, entry.end - builder_.task_start(old_of_new[entry.task_index]))
            << "task ran past the horizon without filling its row";
      }

      if (m + 1 - retired >= kRetireBlock) {
        writer.RetireMachines(retired, m + 1);
        retired = m + 1;
      }
    }
    writer.RetireMachines(retired, num_machines);
    if (!writer.Finish(error)) {
      return false;
    }
    if (info != nullptr) {
      info->num_tasks = n;
      info->dropped_tasks = builder_.dropped_tasks();
      info->file_bytes = writer.file_bytes();
    }
    return true;
  }

  const CellProfile& profile_;
  const GeneratorOptions& options_;
  JobSampler sampler_;
  Rng arrival_rng_;
  Rng placement_rng_;
  Rng usage_rng_;

  CellTraceBuilder builder_;
  std::vector<double> alloc_;
  std::vector<double> machine_weight_;
  struct Departure {
    int32_t machine;
    double limit;
  };
  std::vector<std::vector<Departure>> departures_;  // indexed by end interval
  std::vector<int64_t> departure_counts_;
  std::vector<double> departure_sum_;     // per-machine scratch for one sweep step
  std::vector<Interval> departure_epoch_; // interval the scratch entry is valid for
  std::vector<Interval> runtimes_;
  std::vector<TaskUsageParams> task_params_;
  int64_t resident_count_ = 0;
  TaskId next_task_id_ = 1;
};

}  // namespace

CellTrace GenerateCellTrace(const CellProfile& profile, const GeneratorOptions& options,
                            const Rng& rng) {
  CRF_CHECK_GT(profile.num_machines, 0);
  CRF_CHECK_GT(options.num_intervals, 0);
  Generator generator(profile, options, rng);
  return generator.Run();
}

bool GenerateCellTraceToFile(const CellProfile& profile, const GeneratorOptions& options,
                             const Rng& rng, const std::string& path, std::string* error,
                             StreamedTraceInfo* info) {
  CRF_CHECK_GT(profile.num_machines, 0);
  CRF_CHECK_GT(options.num_intervals, 0);
  Generator generator(profile, options, rng);
  return generator.RunStreaming(path, error, info);
}

}  // namespace crf
