#include "crf/trace/job_sampler.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "crf/util/check.h"

namespace crf {

JobSampler::JobSampler(const CellProfile& profile, const Rng& rng)
    : profile_(profile), rng_(rng) {}

JobTemplate JobSampler::NextJob() {
  JobTemplate job;
  job.job_id = next_job_id_++;
  job.limit = std::clamp(rng_.LogNormal(profile_.limit_log_mu, profile_.limit_log_sigma),
                         profile_.limit_min, profile_.limit_max);
  if (rng_.Bernoulli(profile_.serving_fraction)) {
    job.sched_class = rng_.Bernoulli(0.5) ? SchedulingClass::kLatencySensitive
                                          : SchedulingClass::kHighlySensitive;
  } else {
    job.sched_class =
        rng_.Bernoulli(0.5) ? SchedulingClass::kBestEffort : SchedulingClass::kBatch;
  }
  TaskUsageParams& p = job.params;
  p.limit = job.limit;
  p.mean_ratio =
      0.05 + 0.75 * rng_.Beta(profile_.mean_ratio_alpha, profile_.mean_ratio_beta);
  p.diurnal_amplitude = rng_.Uniform(profile_.diurnal_amp_min, profile_.diurnal_amp_max);
  double phase = profile_.cell_phase_days + rng_.Normal(0.0, profile_.job_phase_jitter_days);
  phase -= std::floor(phase);
  p.phase_days = phase;
  p.ar_rho = rng_.Uniform(profile_.ar_rho_min, profile_.ar_rho_max);
  p.ar_sigma = rng_.Uniform(profile_.ar_sigma_min, profile_.ar_sigma_max);
  p.spike_prob = profile_.spike_prob;
  p.spike_level = profile_.spike_level;
  p.spike_duration = profile_.spike_duration;
  p.within_sigma = profile_.within_sigma;
  p.load_coupling = IsServing(job.sched_class)
                        ? rng_.Beta(profile_.coupling_alpha, profile_.coupling_beta)
                        : 0.0;
  return job;
}

int JobSampler::SampleTasksPerJob() {
  const double mean = std::max(1.0, profile_.tasks_per_job_mean);
  return rng_.Geometric(1.0 / mean);
}

Interval JobSampler::SampleRuntime(bool service, Interval now, Interval num_intervals) {
  CRF_CHECK_LT(now, num_intervals);
  const Interval remaining = num_intervals - now;
  if (service) {
    return remaining;
  }
  double hours;
  if (rng_.Bernoulli(profile_.long_fraction)) {
    hours = rng_.LogNormal(profile_.long_runtime_log_mean, profile_.long_runtime_log_sigma);
  } else {
    hours = rng_.Exponential(profile_.short_runtime_mean_hours);
  }
  const Interval runtime = std::max<Interval>(1, HoursToIntervals(hours));
  return std::min(runtime, remaining);
}

TaskUsageParams JobSampler::JitterTaskParams(const TaskUsageParams& job_params) {
  TaskUsageParams params = job_params;
  params.mean_ratio = std::clamp(params.mean_ratio * rng_.Uniform(0.9, 1.1), 0.02, 1.0);
  return params;
}

double MeanNonServiceRuntimeIntervals(const CellProfile& profile) {
  const double short_mean = profile.short_runtime_mean_hours;
  const double long_mean =
      std::exp(profile.long_runtime_log_mean +
               0.5 * profile.long_runtime_log_sigma * profile.long_runtime_log_sigma);
  const double mean_hours =
      (1.0 - profile.long_fraction) * short_mean + profile.long_fraction * long_mean;
  return std::max(1.0, mean_hours * kIntervalsPerHour);
}

std::vector<double> BuildSharedLoadSeries(const CellProfile& profile, Interval num_intervals,
                                          const Rng& rng) {
  std::vector<double> series(num_intervals);
  Rng local = rng.Fork(0x6c6f6164);  // "load"
  const double rho = profile.cell_load_rho;
  const double innovation = profile.cell_load_sigma * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  double ar = local.Normal(0.0, profile.cell_load_sigma);
  double burst = 1.0;
  Interval burst_remaining = 0;
  for (Interval t = 0; t < num_intervals; ++t) {
    const double wave =
        std::sin(2.0 * std::numbers::pi *
                 (static_cast<double>(t) / kIntervalsPerDay - profile.cell_phase_days));
    ar = rho * ar + local.Normal(0.0, innovation);
    if (burst_remaining > 0) {
      --burst_remaining;
    } else {
      burst = 1.0;
      if (local.Bernoulli(profile.load_burst_rate)) {
        burst = local.LogNormal(profile.load_burst_log_magnitude, 0.15);
        burst_remaining = profile.load_burst_duration;
      }
    }
    series[t] = std::max(0.1, (1.0 + profile.cell_load_amplitude * wave + ar) * burst);
  }
  return series;
}

double ArrivalRate(const CellProfile& profile, Interval t, int64_t resident_count) {
  const double target = profile.tasks_per_machine * profile.num_machines;
  const double mean_runtime = MeanNonServiceRuntimeIntervals(profile);
  const double churn = target * (1.0 - profile.service_fraction) / mean_runtime;
  const double wave =
      std::sin(2.0 * std::numbers::pi *
               (static_cast<double>(t) / kIntervalsPerDay - profile.cell_phase_days));
  const double backfill = 0.05 * std::max(0.0, target - static_cast<double>(resident_count));
  return std::max(0.0, churn * (1.0 + profile.arrival_diurnal_amplitude * wave)) + backfill;
}

}  // namespace crf
