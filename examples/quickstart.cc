// Quickstart: the 60-second tour of the library.
//
// 1. Drive a peak predictor by hand (the node-agent view).
// 2. Generate a synthetic cell, run the trace-driven simulator, and compare
//    predictors by violation rate and savings (the paper's Section 5 loop).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "crf/sim/simulator.h"
#include "crf/trace/generator.h"
#include "crf/util/table.h"

using namespace crf;  // NOLINT: example brevity.

int main() {
  // --- 1. A predictor is just an object the Borglet polls. -----------------
  auto predictor = CreatePredictor(ProductionMaxSpec());  // max(3-sigma, rc-p80)
  Rng rng(1);
  std::vector<TaskSample> tasks = {
      {/*task_id=*/1, /*usage=*/0.0, /*limit=*/0.30},
      {/*task_id=*/2, /*usage=*/0.0, /*limit=*/0.20},
  };
  for (Interval now = 0; now < 6 * kIntervalsPerHour; ++now) {
    tasks[0].usage = 0.30 * (0.4 + 0.2 * rng.UniformDouble());
    tasks[1].usage = 0.20 * (0.5 + 0.3 * rng.UniformDouble());
    predictor->Observe(now, tasks);
  }
  std::printf("predictor %s\n", predictor->name().c_str());
  std::printf("  sum of limits        : %.3f cores\n", 0.30 + 0.20);
  std::printf("  predicted future peak: %.3f cores\n", predictor->PredictPeak());
  std::printf("  -> the scheduler can advertise %.3f extra cores on this machine\n\n",
              0.50 - predictor->PredictPeak());

  // --- 2. Evaluate policies against the clairvoyant peak oracle. -----------
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 32;  // Keep the example fast.
  GeneratorOptions options;
  options.num_intervals = 2 * kIntervalsPerDay;
  CellTrace cell = GenerateCellTrace(profile, options, Rng(42));
  cell.FilterToServingTasks();  // Classes 2-3, like the paper.
  std::printf("generated %s: %d machines, %d serving tasks, %d intervals\n\n",
              cell.name.c_str(), cell.num_machines(), cell.num_tasks(),
              cell.num_intervals);

  Table table({"predictor", "mean violation rate", "mean cell savings"});
  for (const PredictorSpec& spec : {LimitSumSpec(), BorgDefaultSpec(0.9), RcLikeSpec(99.0),
                                    NSigmaSpec(5.0), SimulationMaxSpec()}) {
    const SimResult result = SimulateCell(cell, spec);
    table.AddRow(result.predictor_name,
                 {result.MeanViolationRate(), result.MeanCellSavings()});
  }
  table.Print();
  std::printf("\nviolation rate = how often the prediction dipped below the true future\n"
              "peak (risk); savings = capacity reclaimed vs no overcommitment (reward).\n");
  return 0;
}
