// Writing a new overcommit policy.
//
// The artifact's stated purpose is "to enable future work on designing
// overcommit policies": implement PeakPredictor, and the whole evaluation
// pipeline (oracle comparison, violation metrics, savings) works unchanged.
//
// This example adds an EWMA-with-error-headroom predictor: an exponentially
// weighted moving average of machine usage plus a multiple of the EWMA of
// absolute one-step errors (a cheap, O(1)-memory cousin of N-sigma), and
// races it against the built-ins.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <unordered_map>

#include "crf/core/oracle.h"

#include "crf/sim/simulator.h"
#include "crf/trace/generator.h"
#include "crf/util/table.h"

using namespace crf;  // NOLINT: example brevity.

namespace {

class EwmaPredictor : public PeakPredictor {
 public:
  EwmaPredictor(double alpha, double headroom, Interval min_num_samples)
      : alpha_(alpha), headroom_(headroom), min_num_samples_(min_num_samples) {}

  void Observe(Interval now, std::span<const TaskSample> tasks) override {
    double warmed_usage = 0.0;
    double warming_limit = 0.0;
    double usage_now = 0.0;
    double limit_sum = 0.0;
    for (const TaskSample& task : tasks) {
      TaskState& state = tasks_[task.task_id];
      ++state.samples;
      state.last_seen = now;
      usage_now += task.usage;
      limit_sum += task.limit;
      if (state.samples >= min_num_samples_) {
        warmed_usage += task.usage;
      } else {
        warming_limit += task.limit;
      }
    }
    std::erase_if(tasks_, [now](const auto& e) { return e.second.last_seen != now; });

    if (!initialized_) {
      ewma_ = warmed_usage;
      error_ewma_ = 0.0;
      initialized_ = true;
    } else {
      error_ewma_ = alpha_ * std::abs(warmed_usage - ewma_) + (1.0 - alpha_) * error_ewma_;
      ewma_ = alpha_ * warmed_usage + (1.0 - alpha_) * ewma_;
    }
    const double raw = ewma_ + headroom_ * error_ewma_ + warming_limit;
    prediction_ = ClampPrediction(raw, usage_now, limit_sum);
  }

  double PredictPeak() const override { return prediction_; }

  void Reset() override {
    tasks_.clear();
    initialized_ = false;
    ewma_ = 0.0;
    error_ewma_ = 0.0;
    prediction_ = 0.0;
  }

  std::string name() const override {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "ewma-a%.2f-h%.0f", alpha_, headroom_);
    return buffer;
  }

 private:
  struct TaskState {
    Interval samples = 0;
    Interval last_seen = -1;
  };

  double alpha_;
  double headroom_;
  Interval min_num_samples_;
  std::unordered_map<TaskId, TaskState> tasks_;
  bool initialized_ = false;
  double ewma_ = 0.0;
  double error_ewma_ = 0.0;
  double prediction_ = 0.0;
};

// A tiny driver mirroring SimulateCell for caller-supplied factories (the
// library's SimulateCell takes a PredictorSpec; custom predictors plug in by
// replicating its per-machine loop against the public oracle API).
SimResult SimulateWithFactory(const CellTrace& cell,
                              const std::function<std::unique_ptr<PeakPredictor>()>& factory) {
  // Wrap the factory in a spec-free path: reuse SimulateMachine by copying
  // its observable behaviour — here we inline a compact version.
  SimResult result;
  result.cell_name = cell.name;
  result.predictor_name = factory()->name();
  std::vector<double> cell_limit(cell.num_intervals, 0.0);
  std::vector<double> cell_prediction(cell.num_intervals, 0.0);

  for (int m = 0; m < cell.num_machines(); ++m) {
    auto predictor = factory();
    const std::vector<double> oracle = ComputePeakOracle(cell, m, kIntervalsPerDay);
    const std::span<const int32_t> machine_tasks = cell.machine_tasks(m);
    std::vector<int32_t> order(machine_tasks.begin(), machine_tasks.end());
    const std::span<const Interval> starts = cell.task_starts();
    std::sort(order.begin(), order.end(),
              [starts](int32_t a, int32_t b) { return starts[a] < starts[b]; });
    MachineMetrics metrics;
    metrics.machine_index = m;
    metrics.intervals = cell.num_intervals;
    std::vector<int32_t> active;
    std::vector<TaskSample> samples;
    size_t next = 0;
    double severity_sum = 0.0;
    double savings_sum = 0.0;
    for (Interval tau = 0; tau < cell.num_intervals; ++tau) {
      std::erase_if(active, [&cell, tau](int32_t i) { return cell.task(i).end() <= tau; });
      while (next < order.size() && starts[order[next]] <= tau) {
        active.push_back(order[next++]);
      }
      samples.clear();
      double limit_sum = 0.0;
      for (const int32_t i : active) {
        const TaskView task = cell.task(i);
        samples.push_back({task.task_id(), task.UsageAt(tau), task.limit()});
        limit_sum += task.limit();
      }
      predictor->Observe(tau, samples);
      const double prediction = predictor->PredictPeak();
      if (prediction < oracle[tau] * (1.0 - 1e-9) - 1e-12) {
        ++metrics.violations;
        severity_sum += (oracle[tau] - prediction) / oracle[tau];
      }
      if (!active.empty()) {
        ++metrics.occupied_intervals;
        savings_sum += (limit_sum - prediction) / limit_sum;
      }
      cell_limit[tau] += limit_sum;
      cell_prediction[tau] += prediction;
    }
    metrics.mean_violation_severity = severity_sum / cell.num_intervals;
    if (metrics.occupied_intervals > 0) {
      metrics.savings_ratio = savings_sum / metrics.occupied_intervals;
    }
    result.machines.push_back(metrics);
  }
  for (Interval t = 0; t < cell.num_intervals; ++t) {
    if (cell_limit[t] > 0) {
      result.cell_savings_series.push_back((cell_limit[t] - cell_prediction[t]) /
                                           cell_limit[t]);
    }
  }
  return result;
}

}  // namespace

int main() {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 32;
  GeneratorOptions options;
  options.num_intervals = 3 * kIntervalsPerDay;
  CellTrace cell = GenerateCellTrace(profile, options, Rng(7));
  cell.FilterToServingTasks();
  std::printf("cell: %d machines, %d tasks\n\n", cell.num_machines(), cell.num_tasks());

  Table table({"predictor", "mean violation rate", "mean cell savings"});

  for (const double headroom : {2.0, 4.0, 8.0}) {
    const SimResult result = SimulateWithFactory(cell, [headroom] {
      return std::make_unique<EwmaPredictor>(0.05, headroom, 2 * kIntervalsPerHour);
    });
    table.AddRow(result.predictor_name,
                 {result.MeanViolationRate(), result.MeanCellSavings()});
  }
  for (const PredictorSpec& spec : {NSigmaSpec(5.0), SimulationMaxSpec()}) {
    const SimResult result = SimulateCell(cell, spec);
    table.AddRow(result.predictor_name,
                 {result.MeanViolationRate(), result.MeanCellSavings()});
  }
  table.Print();
  std::printf("\nTune the headroom multiplier and watch the risk/savings trade-off move,\n"
              "exactly like Figs 8-9 do for N-sigma and RC-like.\n");
  return 0;
}
