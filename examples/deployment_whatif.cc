// Deployment what-if: trying a policy change in the closed-loop simulator
// before touching production.
//
// Section 3.3's argument for this library: "a typical experiment using
// overcommit in production may take weeks or months"; simulation answers the
// same question in seconds. Here an operator asks: if my cell runs
// borg-default today, what happens to packing density, tail latency, and
// pending-queue pressure if I switch to the max predictor — and what if I
// get greedy and deploy RC-like p80 alone?

#include <cstdio>

#include "crf/cluster/ab_experiment.h"
#include "crf/util/table.h"

using namespace crf;  // NOLINT: example brevity.

namespace {

void Report(Table& table, const std::string& label, const ClusterSimResult& result) {
  const std::vector<ClusterSimResult> results{result};
  const GroupMetrics m = ComputeGroupMetrics(label, results);
  table.AddRow(label, {m.normalized_allocation.Quantile(0.5),
                       m.normalized_workload.Quantile(0.5),
                       m.relative_savings.Quantile(0.5), m.violation_rate.Quantile(0.9),
                       m.machine_p90_latency.Quantile(0.9),
                       static_cast<double>(result.tasks_timed_out)});
}

}  // namespace

int main() {
  CellProfile profile = ProductionCellProfile(3);
  profile.num_machines = 48;
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerWeek;
  options.warmup = 2 * kIntervalsPerDay;

  Table table({"policy", "alloc/cap p50", "usage/cap p50", "savings p50",
               "violation rate p90", "machine p90-latency p90", "tasks timed out"});

  const Rng rng(99);  // Same seed for every policy: paired comparison.
  for (const auto& [label, spec] :
       std::vector<std::pair<std::string, PredictorSpec>>{
           {"no-overcommit", LimitSumSpec()},
           {"borg-default (today)", BorgDefaultSpec(0.9)},
           {"max(3-sigma, rc-p80)", ProductionMaxSpec()},
           {"rc-p80 alone (greedy)", RcLikeSpec(80.0)},
       }) {
    options.predictor = spec;
    Report(table, label, RunClusterSim(profile, options, rng));
  }
  table.Print();
  std::printf(
      "\nReading the table: the max predictor packs more limit and workload into the\n"
      "same machines with modest extra tail risk; the greedy single-percentile\n"
      "policy packs even denser but its violation tail and hot-machine latency are\n"
      "what a production owner would veto. That triage — in seconds, not weeks — is\n"
      "the paper's simulation methodology.\n");
  return 0;
}
