// Trace tooling: generate, persist, reload, and profile a synthetic cell
// trace — the data-management loop around the simulator (the artifact's
// "store and load intermediate data after each step to reduce the
// simulation's computation costs").

#include <cstdio>
#include <filesystem>

#include "crf/trace/generator.h"
#include "crf/trace/trace_io.h"
#include "crf/trace/trace_stats.h"
#include "crf/util/table.h"

using namespace crf;  // NOLINT: example brevity.

int main() {
  // 1. Generate.
  CellProfile profile = SimCellProfile('c');
  profile.num_machines = 24;
  GeneratorOptions options;
  options.num_intervals = 2 * kIntervalsPerDay;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(11));
  std::printf("generated %s: %d machines, %d tasks, %lld dropped by placement\n",
              cell.name.c_str(), cell.num_machines(), cell.num_tasks(),
              static_cast<long long>(cell.dropped_tasks));

  // 2. Persist and reload — text for diffing, binary for speed. The binary
  // file is the trace's arena verbatim, so loading is one read into an
  // aligned slab.
  const std::string text_path =
      (std::filesystem::temp_directory_path() / "crf_example_cell_c.trace").string();
  const std::string binary_path =
      (std::filesystem::temp_directory_path() / "crf_example_cell_c.crftrace").string();
  SaveCellTrace(cell, text_path);
  SaveCellTraceBinary(cell, binary_path);
  std::printf("saved text -> %s (%.1f KiB), binary -> %s (%.1f KiB)\n", text_path.c_str(),
              std::filesystem::file_size(text_path) / 1024.0, binary_path.c_str(),
              std::filesystem::file_size(binary_path) / 1024.0);
  const auto loaded = LoadCellTrace(binary_path);  // Auto-detects the format.
  if (!loaded.has_value()) {
    std::fprintf(stderr, "reload failed\n");
    return 1;
  }
  std::printf("reloaded: %d tasks (identical placements and usage)\n\n",
              loaded->num_tasks());

  // 3. Profile the workload, Fig 4 / Fig 7 style.
  const Ecdf runtimes = TaskRuntimeHoursCdf(*loaded);
  const Ecdf ratios = UsageToLimitCdf(*loaded, 4);
  Ecdf submissions;
  for (const int64_t n : SubmissionRateSeries(*loaded)) {
    submissions.Add(static_cast<double>(n));
  }

  Table table({"metric", "p50", "p95", "max"});
  table.AddRow("task runtime (hours)",
               {runtimes.Quantile(0.5), runtimes.Quantile(0.95), runtimes.max()});
  table.AddRow("usage / limit", {ratios.Quantile(0.5), ratios.Quantile(0.95), ratios.max()});
  table.AddRow("submissions per 5 min",
               {submissions.Quantile(0.5), submissions.Quantile(0.95), submissions.max()});
  table.Print();

  std::printf("\nfraction of tasks under 24h: %.3f (cell c is the short-task cell)\n",
              runtimes.Evaluate(24.0));
  std::remove(text_path.c_str());
  std::remove(binary_path.c_str());
  return 0;
}
