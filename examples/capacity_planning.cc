// Capacity planning: turning overcommit savings into machines not bought.
//
// The paper's ultimate motivation is CapEx: "the savings directly translate
// into usable capacity, which reduces the purchase of capacity in the future
// order". This example runs the deployed max predictor over a small fleet
// (all eight cells), converts each cell's savings ratio into reclaimed
// machine-equivalents, and prints a fleet-level purchase-deferral summary —
// the workflow a capacity planner would run against their own traces.

#include <cstdio>

#include "crf/sim/simulator.h"
#include "crf/trace/generator.h"
#include "crf/trace/trace_stats.h"
#include "crf/util/table.h"

using namespace crf;  // NOLINT: example brevity.

int main() {
  const Interval horizon = 3 * kIntervalsPerDay;
  Table table({"cell", "machines", "mean alloc/cap", "savings ratio",
               "reclaimed machine-equivalents"});

  double fleet_machines = 0.0;
  double fleet_reclaimed = 0.0;
  for (char letter = 'a'; letter <= 'h'; ++letter) {
    CellProfile profile = SimCellProfile(letter);
    profile.num_machines = std::max(12, profile.num_machines / 8);  // Example-sized fleet.
    GeneratorOptions options;
    options.num_intervals = horizon;
    CellTrace cell = GenerateCellTrace(profile, options, Rng(2026));
    cell.FilterToServingTasks();

    const SimResult result = SimulateCell(cell, ProductionMaxSpec());

    // Savings are relative to allocated limits; convert to machines via the
    // cell's average allocation.
    const std::vector<double> limits = CellLimitSeries(cell);
    double mean_alloc = 0.0;
    for (const double l : limits) {
      mean_alloc += l;
    }
    mean_alloc /= limits.size();
    const double alloc_per_capacity = mean_alloc / cell.TotalCapacity();
    const double reclaimed =
        result.MeanCellSavings() * mean_alloc / profile.machine_capacity;

    table.AddRow(cell.name, {static_cast<double>(cell.num_machines()), alloc_per_capacity,
                             result.MeanCellSavings(), reclaimed});
    fleet_machines += static_cast<double>(cell.num_machines());
    fleet_reclaimed += reclaimed;
  }
  table.Print();
  std::printf(
      "\nfleet: %.0f machines, %.1f machine-equivalents reclaimed (%.1f%% of the fleet)\n"
      "The paper's production deployment reports 10-16%% extra usable CPU capacity;\n"
      "at warehouse scale that is thousands of machines per future purchase order.\n",
      fleet_machines, fleet_reclaimed, 100.0 * fleet_reclaimed / fleet_machines);
  return 0;
}
