#!/usr/bin/env python3
"""Validates the schema of a tracked BENCH_trace.json file.

Usage: check_bench_trace.py [path]   (default: BENCH_trace.json)

Checks structure — field presence, types, and basic sanity (positive counts
and rates). Deliberately almost no performance thresholds: CI runners vary
too much for absolute numbers to gate a merge; the tracked file is the
regression record, this script only keeps it well-formed.

v2 adds the heap-vs-mmap load comparison columns (heap_load_ms,
mmap_load_ms, heap_load_resident_bytes, mmap_load_resident_bytes,
load_speedup): load time is measured page-cache-hot, isolating the
copy-vs-map cost; bytes materialized are measured cold, so folio-granular
cache state cannot credit the mapped open with pages it never touched (the
recorder in bench/perf_microbench.cc documents both). Rows recorded before
v2 are accepted without them; a row carrying any of them must carry all of
them. The one ratio gate: on full-mode rows with the columns, the mapped
open must beat the heap open by an order of magnitude on both load time and
bytes materialized — that ratio is the point of the zero-copy load path, it
is a property of the code (fread-everything vs fault-metadata-only), not of
runner speed, and a row where it collapsed means the mapped loader started
touching the bulk slabs.
"""

import sys

from bench_check_lib import Checker

REQUIRED_SCHEMA = "crf-trace-bench-v2"
LOAD_RATIO_TARGET = 10.0

ENTRY_FIELDS = {
    "date": str,
    "mode": str,
    "num_machines": int,
    "num_intervals": int,
    "num_tasks": int,
    "task_intervals": int,
    "aos_machine_scans_per_sec": (int, float),
    "arena_machine_scans_per_sec": (int, float),
    "speedup": (int, float),
    "aos_bytes_per_task_interval": (int, float),
    "arena_bytes_per_task_interval": (int, float),
}

# v2 load-path columns: required together on any row that carries one.
LOAD_FIELDS = {
    "heap_load_ms": (int, float),
    "mmap_load_ms": (int, float),
    "heap_load_resident_bytes": int,
    "mmap_load_resident_bytes": int,
    "load_speedup": (int, float),
}

POSITIVE_FIELDS = [
    "num_machines",
    "num_intervals",
    "num_tasks",
    "task_intervals",
    "aos_machine_scans_per_sec",
    "arena_machine_scans_per_sec",
    "speedup",
    "aos_bytes_per_task_interval",
    "arena_bytes_per_task_interval",
]

check = Checker("check_bench_trace")


def check_load_columns(i, entry):
    check.check_entry_fields(i, entry, LOAD_FIELDS)
    check.check_positive(i, entry, LOAD_FIELDS)
    if entry["mmap_load_resident_bytes"] > entry["heap_load_resident_bytes"]:
        check.fail(
            f"entries[{i}]: mmap open materialized more than the heap open "
            f'({entry["mmap_load_resident_bytes"]} > '
            f'{entry["heap_load_resident_bytes"]} bytes)'
        )
    if entry["mode"] != "full":
        return
    if entry["heap_load_ms"] < LOAD_RATIO_TARGET * entry["mmap_load_ms"]:
        check.fail(
            f"entries[{i}]: full-mode mmap load is not an order of magnitude "
            f'faster ({entry["heap_load_ms"]} ms heap vs '
            f'{entry["mmap_load_ms"]} ms mmap)'
        )
    if entry["heap_load_resident_bytes"] < (
        LOAD_RATIO_TARGET * entry["mmap_load_resident_bytes"]
    ):
        check.fail(
            f"entries[{i}]: full-mode mmap load does not materialize an order "
            f'of magnitude less ({entry["heap_load_resident_bytes"]} bytes '
            f'heap vs {entry["mmap_load_resident_bytes"]} bytes mmap)'
        )


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_trace.json"
    entries = check.load(path, REQUIRED_SCHEMA)

    with_load = 0
    for i, entry in enumerate(entries):
        check.require_object(i, entry)
        check.check_entry_fields(i, entry, ENTRY_FIELDS)
        check.check_positive(i, entry, POSITIVE_FIELDS)
        check.check_mode(i, entry)
        if any(field in entry for field in LOAD_FIELDS):
            check_load_columns(i, entry)
            with_load += 1

    check.ok(
        f"{path} has {len(entries)} well-formed entries "
        f"({with_load} with load-path columns)"
    )


if __name__ == "__main__":
    main()
