#!/usr/bin/env python3
"""Validates the schema of a tracked BENCH_trace.json file.

Usage: check_bench_trace.py [path]   (default: BENCH_trace.json)

Checks structure only — field presence, types, and basic sanity (positive
counts and rates). Deliberately no performance thresholds: CI runners vary
too much for absolute numbers to gate a merge; the tracked file is the
regression record, this script only keeps it well-formed.
"""

import json
import sys

REQUIRED_SCHEMA = "crf-trace-bench-v1"

ENTRY_FIELDS = {
    "date": str,
    "mode": str,
    "num_machines": int,
    "num_intervals": int,
    "num_tasks": int,
    "task_intervals": int,
    "aos_machine_scans_per_sec": (int, float),
    "arena_machine_scans_per_sec": (int, float),
    "speedup": (int, float),
    "aos_bytes_per_task_interval": (int, float),
    "arena_bytes_per_task_interval": (int, float),
}

POSITIVE_FIELDS = [
    "num_machines",
    "num_intervals",
    "num_tasks",
    "task_intervals",
    "aos_machine_scans_per_sec",
    "arena_machine_scans_per_sec",
    "speedup",
    "aos_bytes_per_task_interval",
    "arena_bytes_per_task_interval",
]


def fail(message):
    print(f"check_bench_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_trace.json"
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        fail(f"{path} not found")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if not isinstance(data, dict):
        fail("top level must be an object")
    if data.get("schema") != REQUIRED_SCHEMA:
        fail(f'schema must be "{REQUIRED_SCHEMA}", got {data.get("schema")!r}')
    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        fail('"entries" must be a non-empty array')

    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            fail(f"entries[{i}] must be an object")
        for field, types in ENTRY_FIELDS.items():
            if field not in entry:
                fail(f"entries[{i}] missing field {field!r}")
            if not isinstance(entry[field], types) or isinstance(entry[field], bool):
                fail(f"entries[{i}].{field} has wrong type: {entry[field]!r}")
        for field in POSITIVE_FIELDS:
            if entry[field] <= 0:
                fail(f"entries[{i}].{field} must be positive, got {entry[field]}")
        if entry["mode"] not in ("short", "full"):
            fail(f'entries[{i}].mode must be "short" or "full", got {entry["mode"]!r}')

    print(f"check_bench_trace: OK: {path} has {len(entries)} well-formed entries")


if __name__ == "__main__":
    main()
