#!/usr/bin/env python3
"""Validates the schema of a tracked BENCH_sweep.json file.

Usage: check_bench_sweep.py [path]   (default: BENCH_sweep.json)

Checks structure only — field presence, types, and basic sanity (positive
rates and spec counts). Deliberately no performance thresholds: CI runners
vary too much for absolute numbers to gate a merge; the tracked file is the
regression record, this script only keeps it well-formed.

v2 requires the tail columns the risk layer added (max_violation_streak,
worst_severity_p999, worst_savings_at_risk): the tracked record must carry
the grid's risk profile, not just its mean throughput. v1 files are refused
outright — their rows lack the columns, so regenerate the file with the
current bench (CRF_SWEEP_BENCH=short ./perf_microbench) instead of mixing
schemas. The tail columns are bounded, not thresholded: severity and savings
are ratios in [0, 1] by construction (severity = (peak - prediction)/peak on
violating intervals; savings is clamped non-negative), and a streak cannot
outlast the trace. savings_at_risk gets a tiny negative epsilon of slack:
the P² quantile estimator's parabolic marker interpolation can land a few
ulps below an all-zero sample stream.
"""

import sys

from bench_check_lib import Checker

REQUIRED_SCHEMA = "crf-sweep-bench-v2"

ENTRY_FIELDS = {
    "date": str,
    "mode": str,
    "threads": int,
    "num_machines": int,
    "num_intervals": int,
    "num_specs": int,
    "per_spec_machines_per_sec": (int, float),
    "multi_machines_per_sec": (int, float),
    "speedup": (int, float),
    "total_violations": int,
    "max_violation_streak": int,
    "worst_severity_p999": (int, float),
    "worst_savings_at_risk": (int, float),
}

POSITIVE_FIELDS = [
    "threads",
    "num_machines",
    "num_intervals",
    "num_specs",
    "per_spec_machines_per_sec",
    "multi_machines_per_sec",
    "speedup",
]

NON_NEGATIVE_FIELDS = [
    "total_violations",
    "max_violation_streak",
    "worst_severity_p999",
]

# P² marker interpolation error below an all-zero savings stream.
SAVINGS_EPSILON = 1e-9

check = Checker("check_bench_sweep")


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sweep.json"
    entries = check.load(
        path,
        REQUIRED_SCHEMA,
        "v1 rows lack the tail columns; regenerate the file with the "
        "current bench",
    )

    for i, entry in enumerate(entries):
        check.require_object(i, entry)
        check.check_entry_fields(i, entry, ENTRY_FIELDS)
        check.check_positive(i, entry, POSITIVE_FIELDS)
        check.check_non_negative(i, entry, NON_NEGATIVE_FIELDS)
        check.check_mode(i, entry)
        if entry["max_violation_streak"] > entry["num_intervals"]:
            check.fail(
                f"entries[{i}].max_violation_streak "
                f"({entry['max_violation_streak']}) exceeds num_intervals "
                f"({entry['num_intervals']}) — a streak cannot outlast the trace"
            )
        for ratio in ("worst_severity_p999", "worst_savings_at_risk"):
            if entry[ratio] > 1.0:
                check.fail(
                    f"entries[{i}].{ratio} ({entry[ratio]}) exceeds 1 — "
                    "severity and savings are ratios by construction"
                )
        if entry["worst_savings_at_risk"] < -SAVINGS_EPSILON:
            check.fail(
                f"entries[{i}].worst_savings_at_risk "
                f"({entry['worst_savings_at_risk']}) is below -{SAVINGS_EPSILON} — "
                "predictions are clamped to the limit sum, so savings cannot "
                "go materially negative"
            )
        if entry["total_violations"] > 0 and entry["max_violation_streak"] == 0:
            check.fail(
                f"entries[{i}]: total_violations {entry['total_violations']} "
                "with max_violation_streak 0 — any violation opens a streak"
            )

    check.ok(f"{path} has {len(entries)} well-formed entries")


if __name__ == "__main__":
    main()
