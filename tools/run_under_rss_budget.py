#!/usr/bin/env python3
"""Runs a command and fails if its peak RSS exceeds a byte budget.

Usage: run_under_rss_budget.py <budget_bytes> <command> [args...]

The CI cloud-scale smoke uses this to make the zero-copy story a hard gate:
stream-generating a 10k-machine trace and replaying it from an mmap must
complete well under the trace's own file size in resident memory, or the
streamed writer / mapped loader has started materializing bulk slabs.

Peak RSS is taken from getrusage(RUSAGE_CHILDREN) after the child exits —
the kernel's own high-water mark, no sampling race. The caller must be a
fresh python process (the counter aggregates every waited child), which is
how CI invokes it: one wrapper per gated command.
"""

import resource
import subprocess
import sys


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        budget = int(sys.argv[1])
    except ValueError:
        print(f"run_under_rss_budget: bad budget {sys.argv[1]!r}", file=sys.stderr)
        return 2
    command = sys.argv[2:]

    returncode = subprocess.run(command).returncode
    if returncode != 0:
        print(
            f"run_under_rss_budget: command failed with exit code {returncode}",
            file=sys.stderr,
        )
        return returncode

    # ru_maxrss is kilobytes on Linux.
    peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * 1024
    verdict = "within" if peak <= budget else "EXCEEDS"
    print(
        f"run_under_rss_budget: peak RSS {peak} bytes {verdict} "
        f"budget {budget} bytes ({command[0]})"
    )
    return 0 if peak <= budget else 1


if __name__ == "__main__":
    sys.exit(main())
