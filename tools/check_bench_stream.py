#!/usr/bin/env python3
"""Validates a tracked BENCH_stream.json thread-scaling matrix.

Usage: check_bench_stream.py [path]   (default: BENCH_stream.json)

Schema checks (field presence, types, sanity) plus the thread-matrix rules
introduced with the contention-free ingest engine:

- Rows carry the pool size actually used (`threads`) and whether the sharded
  path ran (`parallel`). A `threads: 1` row must be the serial baseline
  (`parallel: false`, `parallel_speedup: 1.0`) — single-thread rows labeled
  as sharded are refused as misleading.
- Rows group into matrices (`matrix` id). The file must contain at least one
  complete matrix covering threads {1, 4, 8, 16}; rows within a matrix must
  describe the same workload (same event count and cell shape).
- Full-mode matrices must use the enlarged problem size (>= 2048 machines,
  >= 2016 intervals — fan-out must be amortized, not hidden by a toy cell).
- Speedup target: in every complete full-mode matrix, the 8-thread row must
  reach parallel_speedup >= 4.0 — checked only when the recording host had
  >= 8 cores (`host_cores`); a waiver is printed otherwise, because a 1-core
  container cannot measure parallelism no matter how contention-free the
  engine is. Timing thresholds beyond that are deliberately absent: CI
  runners vary too much for absolute rates to gate a merge.
"""

import sys

from bench_check_lib import Checker

REQUIRED_SCHEMA = "crf-stream-bench-v2"
REQUIRED_THREADS = {1, 4, 8, 16}
SPEEDUP_TARGET_THREADS = 8
SPEEDUP_TARGET = 4.0
FULL_MIN_MACHINES = 2048
FULL_MIN_INTERVALS = 2016

ENTRY_FIELDS = {
    "date": str,
    "mode": str,
    "matrix": str,
    "threads": int,
    "parallel": bool,
    "host_cores": int,
    "num_machines": int,
    "num_intervals": int,
    "num_tasks": int,
    "num_shards": int,
    "events": int,
    "machine_ticks": int,
    "events_per_sec": (int, float),
    "parallel_speedup": (int, float),
}

POSITIVE_FIELDS = [
    "threads",
    "host_cores",
    "num_machines",
    "num_intervals",
    "num_tasks",
    "num_shards",
    "events",
    "machine_ticks",
    "events_per_sec",
    "parallel_speedup",
]

check = Checker("check_bench_stream")


def check_entry(i, entry):
    check.require_object(i, entry)
    check.reject_legacy_fields(
        i,
        entry,
        ("serial_events_per_sec", "parallel_events_per_sec"),
        "v2 rows record one lane each",
    )
    check.check_entry_fields(i, entry, ENTRY_FIELDS)
    check.check_positive(i, entry, POSITIVE_FIELDS)
    check.check_mode(i, entry)
    if entry["machine_ticks"] != entry["num_machines"] * entry["num_intervals"]:
        check.fail(
            f"entries[{i}].machine_ticks must equal num_machines * num_intervals, "
            f'got {entry["machine_ticks"]}'
        )
    if entry["threads"] == 1:
        if entry["parallel"]:
            check.fail(
                f"entries[{i}]: threads=1 labeled as sharded (parallel=true) — "
                "single-thread rows must be the serial baseline"
            )
        if entry["parallel_speedup"] != 1.0:
            check.fail(
                f"entries[{i}]: serial baseline must have parallel_speedup 1.0, "
                f'got {entry["parallel_speedup"]}'
            )
    elif not entry["parallel"]:
        check.fail(f"entries[{i}]: threads={entry['threads']} but parallel=false")


def check_matrix(matrix_id, rows):
    threads = {row["threads"] for row in rows}
    complete = REQUIRED_THREADS.issubset(threads)
    first = rows[0]
    for row in rows[1:]:
        for field in ("mode", "num_machines", "num_intervals", "num_tasks", "events"):
            if row[field] != first[field]:
                check.fail(
                    f"matrix {matrix_id!r}: rows disagree on {field} "
                    f"({row[field]} vs {first[field]}) — lanes timed different workloads"
                )
    if first["mode"] == "full" and complete:
        if first["num_machines"] < FULL_MIN_MACHINES:
            check.fail(
                f"matrix {matrix_id!r}: full mode requires >= {FULL_MIN_MACHINES} "
                f'machines, got {first["num_machines"]}'
            )
        if first["num_intervals"] < FULL_MIN_INTERVALS:
            check.fail(
                f"matrix {matrix_id!r}: full mode requires >= {FULL_MIN_INTERVALS} "
                f'intervals, got {first["num_intervals"]}'
            )
        for row in rows:
            if row["threads"] != SPEEDUP_TARGET_THREADS:
                continue
            if row["host_cores"] >= SPEEDUP_TARGET_THREADS:
                if row["parallel_speedup"] < SPEEDUP_TARGET:
                    check.fail(
                        f"matrix {matrix_id!r}: parallel_speedup at "
                        f"{SPEEDUP_TARGET_THREADS} threads is "
                        f'{row["parallel_speedup"]}, target >= {SPEEDUP_TARGET}'
                    )
            else:
                check.note(
                    f"matrix {matrix_id!r} speedup target waived — recorded on "
                    f'a {row["host_cores"]}-core host, which cannot measure '
                    f"{SPEEDUP_TARGET_THREADS}-thread scaling"
                )
    return complete


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_stream.json"
    entries = check.load(path, REQUIRED_SCHEMA)

    matrices = {}
    for i, entry in enumerate(entries):
        check_entry(i, entry)
        matrices.setdefault(entry["matrix"], []).append(entry)

    complete = sum(1 for mid, rows in matrices.items() if check_matrix(mid, rows))
    if complete == 0:
        required = sorted(REQUIRED_THREADS)
        check.fail(f"no complete thread matrix: need rows at threads {required}")

    check.ok(
        f"{path} has {len(entries)} well-formed entries "
        f"in {len(matrices)} matrices ({complete} complete)"
    )


if __name__ == "__main__":
    main()
