#!/usr/bin/env python3
"""Validates the schema of a tracked BENCH_stream.json file.

Usage: check_bench_stream.py [path]   (default: BENCH_stream.json)

Checks structure only — field presence, types, and basic sanity (positive
counts and rates). Deliberately no performance thresholds: CI runners vary
too much for absolute numbers to gate a merge; the tracked file is the
regression record, this script only keeps it well-formed.
"""

import json
import sys

REQUIRED_SCHEMA = "crf-stream-bench-v1"

ENTRY_FIELDS = {
    "date": str,
    "mode": str,
    "num_machines": int,
    "num_intervals": int,
    "num_tasks": int,
    "num_shards": int,
    "events": int,
    "machine_ticks": int,
    "serial_events_per_sec": (int, float),
    "parallel_events_per_sec": (int, float),
    "parallel_speedup": (int, float),
}

POSITIVE_FIELDS = [
    "num_machines",
    "num_intervals",
    "num_tasks",
    "num_shards",
    "events",
    "machine_ticks",
    "serial_events_per_sec",
    "parallel_events_per_sec",
    "parallel_speedup",
]


def fail(message):
    print(f"check_bench_stream: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_stream.json"
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        fail(f"{path} not found")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if not isinstance(data, dict):
        fail("top level must be an object")
    if data.get("schema") != REQUIRED_SCHEMA:
        fail(f'schema must be "{REQUIRED_SCHEMA}", got {data.get("schema")!r}')
    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        fail('"entries" must be a non-empty array')

    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            fail(f"entries[{i}] must be an object")
        for field, types in ENTRY_FIELDS.items():
            if field not in entry:
                fail(f"entries[{i}] missing field {field!r}")
            if not isinstance(entry[field], types) or isinstance(entry[field], bool):
                fail(f"entries[{i}].{field} has wrong type: {entry[field]!r}")
        for field in POSITIVE_FIELDS:
            if entry[field] <= 0:
                fail(f"entries[{i}].{field} must be positive, got {entry[field]}")
        if entry["mode"] not in ("short", "full"):
            fail(f'entries[{i}].mode must be "short" or "full", got {entry["mode"]!r}')
        if entry["machine_ticks"] != entry["num_machines"] * entry["num_intervals"]:
            fail(
                f"entries[{i}].machine_ticks must equal num_machines * num_intervals, "
                f'got {entry["machine_ticks"]}'
            )

    print(f"check_bench_stream: OK: {path} has {len(entries)} well-formed entries")


if __name__ == "__main__":
    main()
