#!/usr/bin/env python3
"""Validates a tracked BENCH_stream.json thread-scaling matrix.

Usage: check_bench_stream.py [path]   (default: BENCH_stream.json)

Schema checks (field presence, types, sanity) plus the thread-matrix rules
introduced with the contention-free ingest engine:

- Rows carry the pool size actually used (`threads`) and whether the sharded
  path ran (`parallel`). A `threads: 1` row must be the serial baseline
  (`parallel: false`, `parallel_speedup: 1.0`) — single-thread rows labeled
  as sharded are refused as misleading.
- Rows group into matrices (`matrix` id). The file must contain at least one
  complete matrix covering threads {1, 4, 8, 16}; rows within a matrix must
  describe the same workload (same event count and cell shape).
- Full-mode matrices must use the enlarged problem size (>= 2048 machines,
  >= 2016 intervals — fan-out must be amortized, not hidden by a toy cell).
- Speedup target: in every complete full-mode matrix, the 8-thread row must
  reach parallel_speedup >= 4.0 — checked only when the recording host had
  >= 8 cores (`host_cores`); a waiver is printed otherwise, because a 1-core
  container cannot measure parallelism no matter how contention-free the
  engine is. Timing thresholds beyond that are deliberately absent: CI
  runners vary too much for absolute rates to gate a merge.
"""

import json
import sys

REQUIRED_SCHEMA = "crf-stream-bench-v2"
REQUIRED_THREADS = {1, 4, 8, 16}
SPEEDUP_TARGET_THREADS = 8
SPEEDUP_TARGET = 4.0
FULL_MIN_MACHINES = 2048
FULL_MIN_INTERVALS = 2016

ENTRY_FIELDS = {
    "date": str,
    "mode": str,
    "matrix": str,
    "threads": int,
    "parallel": bool,
    "host_cores": int,
    "num_machines": int,
    "num_intervals": int,
    "num_tasks": int,
    "num_shards": int,
    "events": int,
    "machine_ticks": int,
    "events_per_sec": (int, float),
    "parallel_speedup": (int, float),
}

POSITIVE_FIELDS = [
    "threads",
    "host_cores",
    "num_machines",
    "num_intervals",
    "num_tasks",
    "num_shards",
    "events",
    "machine_ticks",
    "events_per_sec",
    "parallel_speedup",
]


def fail(message):
    print(f"check_bench_stream: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_entry(i, entry):
    if not isinstance(entry, dict):
        fail(f"entries[{i}] must be an object")
    for legacy in ("serial_events_per_sec", "parallel_events_per_sec"):
        if legacy in entry:
            fail(
                f"entries[{i}] carries legacy v1 field {legacy!r}; "
                "v2 rows record one lane each"
            )
    for field, types in ENTRY_FIELDS.items():
        if field not in entry:
            fail(f"entries[{i}] missing field {field!r}")
        value = entry[field]
        if field == "parallel":
            if not isinstance(value, bool):
                fail(f"entries[{i}].parallel must be a bool, got {value!r}")
        elif not isinstance(value, types) or isinstance(value, bool):
            fail(f"entries[{i}].{field} has wrong type: {value!r}")
    for field in POSITIVE_FIELDS:
        if entry[field] <= 0:
            fail(f"entries[{i}].{field} must be positive, got {entry[field]}")
    if entry["mode"] not in ("short", "full"):
        fail(f'entries[{i}].mode must be "short" or "full", got {entry["mode"]!r}')
    if entry["machine_ticks"] != entry["num_machines"] * entry["num_intervals"]:
        fail(
            f"entries[{i}].machine_ticks must equal num_machines * num_intervals, "
            f'got {entry["machine_ticks"]}'
        )
    if entry["threads"] == 1:
        if entry["parallel"]:
            fail(
                f"entries[{i}]: threads=1 labeled as sharded (parallel=true) — "
                "single-thread rows must be the serial baseline"
            )
        if entry["parallel_speedup"] != 1.0:
            fail(
                f"entries[{i}]: serial baseline must have parallel_speedup 1.0, "
                f'got {entry["parallel_speedup"]}'
            )
    elif not entry["parallel"]:
        fail(f"entries[{i}]: threads={entry['threads']} but parallel=false")


def check_matrix(matrix_id, rows):
    threads = {row["threads"] for row in rows}
    complete = REQUIRED_THREADS.issubset(threads)
    first = rows[0]
    for row in rows[1:]:
        for field in ("mode", "num_machines", "num_intervals", "num_tasks", "events"):
            if row[field] != first[field]:
                fail(
                    f"matrix {matrix_id!r}: rows disagree on {field} "
                    f"({row[field]} vs {first[field]}) — lanes timed different workloads"
                )
    if first["mode"] == "full" and complete:
        if first["num_machines"] < FULL_MIN_MACHINES:
            fail(
                f"matrix {matrix_id!r}: full mode requires >= {FULL_MIN_MACHINES} "
                f'machines, got {first["num_machines"]}'
            )
        if first["num_intervals"] < FULL_MIN_INTERVALS:
            fail(
                f"matrix {matrix_id!r}: full mode requires >= {FULL_MIN_INTERVALS} "
                f'intervals, got {first["num_intervals"]}'
            )
        for row in rows:
            if row["threads"] != SPEEDUP_TARGET_THREADS:
                continue
            if row["host_cores"] >= SPEEDUP_TARGET_THREADS:
                if row["parallel_speedup"] < SPEEDUP_TARGET:
                    fail(
                        f"matrix {matrix_id!r}: parallel_speedup at "
                        f"{SPEEDUP_TARGET_THREADS} threads is "
                        f'{row["parallel_speedup"]}, target >= {SPEEDUP_TARGET}'
                    )
            else:
                print(
                    f"check_bench_stream: NOTE: matrix {matrix_id!r} speedup target "
                    f'waived — recorded on a {row["host_cores"]}-core host, which '
                    f"cannot measure {SPEEDUP_TARGET_THREADS}-thread scaling"
                )
    return complete


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_stream.json"
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        fail(f"{path} not found")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if not isinstance(data, dict):
        fail("top level must be an object")
    if data.get("schema") != REQUIRED_SCHEMA:
        fail(f'schema must be "{REQUIRED_SCHEMA}", got {data.get("schema")!r}')
    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        fail('"entries" must be a non-empty array')

    matrices = {}
    for i, entry in enumerate(entries):
        check_entry(i, entry)
        matrices.setdefault(entry["matrix"], []).append(entry)

    complete = sum(1 for mid, rows in matrices.items() if check_matrix(mid, rows))
    if complete == 0:
        required = sorted(REQUIRED_THREADS)
        fail(f"no complete thread matrix: need rows at threads {required}")

    print(
        f"check_bench_stream: OK: {path} has {len(entries)} well-formed entries "
        f"in {len(matrices)} matrices ({complete} complete)"
    )


if __name__ == "__main__":
    main()
