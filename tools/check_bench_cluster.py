#!/usr/bin/env python3
"""Validates a tracked BENCH_cluster.json thread-scaling matrix.

Usage: check_bench_cluster.py [path]   (default: BENCH_cluster.json)

Schema checks (field presence, types, sanity) plus the thread-matrix rules
introduced with the contention-free cluster engine:

- Rows carry the pool size actually used (`threads`) and whether the sharded
  step loop ran (`parallel`). A `threads: 1` row must be the serial baseline
  (`parallel: false`, `parallel_speedup: 1.0`) — single-thread rows labeled
  as sharded (the misleading v1 rows this schema replaces) are refused.
- Rows group into matrices (`matrix` id). The file must contain at least one
  complete matrix covering threads {1, 4, 8, 16}; rows within a matrix must
  agree on the workload AND on the placement counters — the determinism
  contract says every pool size places exactly the same tasks, so diverging
  counters mean the lanes timed different computations.
- Full-mode matrices must use the enlarged problem size (>= 2048 machines).
- Speedup target: in every complete full-mode matrix, the 8-thread row must
  reach parallel_speedup >= 4.0 — checked only when the recording host had
  >= 8 cores (`host_cores`); a waiver is printed otherwise, because a 1-core
  container cannot measure parallelism no matter how contention-free the
  engine is. Timing thresholds beyond that are deliberately absent: CI
  runners vary too much for absolute rates to gate a merge.

v3 adds the memory columns and the cloud-scale lane:

- New-matrix rows carry `peak_rss_bytes` (positive), `load_ms` (>= 0) and
  `load_mode`. A matrix is "new" when any of its rows carries any of those
  fields — then every row in it must carry all of them (a half-migrated
  matrix would make rows incomparable). Matrices recorded before v3 are
  accepted without them. Matrix lanes generate their cell in-process, so
  their rows must say load_mode "generated" with load_ms 0.
- `mode: "scale"` rows are the streamed-generation / mmap-load / streaming-
  replay pipeline record (one row per run, never part of a thread matrix).
  They must cover >= 100000 machines, say load_mode "mmap" with a positive
  load_ms, and carry the full I/O story: gen_ms, file_bytes, events_per_sec,
  peak_rss_bytes, resident_after_load_bytes, resident_after_replay_bytes.
  The zero-copy claim is gated on the arena itself, in two steps. The open:
  resident_after_load_bytes (trace-file pages this process materialized) must
  be an order of magnitude under file_bytes — the mapped load touches only
  the metadata slabs the validator reads. The replay:
  resident_after_replay_bytes must stay within 4x of the open's footprint
  even though the replay read every byte of the file — that is what proves
  the blocked page drops return the bulk slabs to the kernel as machines
  finish (a replay that materialized them sits at ~file_bytes, 10-20x over
  this gate; the 4x covers the extra metadata columns a replay legitimately
  touches beyond what validation did). The replay gate is deliberately
  relative, not file-relative: the arena's metadata floor is ~10% of a
  one-day file, so "an order of magnitude under the file" is unreachable at
  this horizon no matter how perfect the eviction. Whole-process
  peak_rss_bytes is recorded but not gated against the file: it is dominated
  by the replayer's per-machine predictor state, which scales with the cell
  no matter how the trace is loaded.
"""

import json
import sys

REQUIRED_SCHEMA = "crf-cluster-bench-v3"
REQUIRED_THREADS = {1, 4, 8, 16}
SPEEDUP_TARGET_THREADS = 8
SPEEDUP_TARGET = 4.0
FULL_MIN_MACHINES = 2048
SCALE_MIN_MACHINES = 100000
SCALE_RESIDENCY_FACTOR = 10
SCALE_REPLAY_FACTOR = 4

ENTRY_FIELDS = {
    "date": str,
    "mode": str,
    "matrix": str,
    "threads": int,
    "parallel": bool,
    "host_cores": int,
    "num_machines": int,
    "num_intervals": int,
    "machine_steps_per_sec": (int, float),
    "placements_per_sec": (int, float),
    "parallel_speedup": (int, float),
    "placement_attempts": int,
    "tasks_placed": int,
}

POSITIVE_FIELDS = [
    "threads",
    "host_cores",
    "num_machines",
    "num_intervals",
    "machine_steps_per_sec",
    "placements_per_sec",
    "parallel_speedup",
]

# v3 memory columns: required together on every row of a new matrix.
V3_FIELDS = {
    "peak_rss_bytes": int,
    "load_ms": (int, float),
    "load_mode": str,
}

SCALE_FIELDS = {
    "date": str,
    "mode": str,
    "matrix": str,
    "threads": int,
    "parallel": bool,
    "host_cores": int,
    "num_machines": int,
    "num_intervals": int,
    "num_tasks": int,
    "placement_probes": int,
    "file_bytes": int,
    "gen_ms": (int, float),
    "gen_peak_rss_bytes": int,
    "load_ms": (int, float),
    "load_mode": str,
    "resident_after_load_bytes": int,
    "resident_after_replay_bytes": int,
    "events": int,
    "events_per_sec": (int, float),
    "peak_rss_bytes": int,
}

SCALE_POSITIVE_FIELDS = [
    "num_machines",
    "num_intervals",
    "num_tasks",
    "placement_probes",
    "file_bytes",
    "gen_ms",
    "gen_peak_rss_bytes",
    "load_ms",
    "resident_after_load_bytes",
    "resident_after_replay_bytes",
    "events",
    "events_per_sec",
    "peak_rss_bytes",
]


def fail(message):
    print(f"check_bench_cluster: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_field_types(i, entry, fields):
    for field, types in fields.items():
        if field not in entry:
            fail(f"entries[{i}] missing field {field!r}")
        value = entry[field]
        if types is bool or field == "parallel":
            if not isinstance(value, bool):
                fail(f"entries[{i}].{field} must be a bool, got {value!r}")
        elif not isinstance(value, types) or isinstance(value, bool):
            fail(f"entries[{i}].{field} has wrong type: {value!r}")


def check_scale_entry(i, entry):
    check_field_types(i, entry, SCALE_FIELDS)
    for field in SCALE_POSITIVE_FIELDS:
        if entry[field] <= 0:
            fail(f"entries[{i}].{field} must be positive, got {entry[field]}")
    if entry["num_machines"] < SCALE_MIN_MACHINES:
        fail(
            f"entries[{i}]: scale rows must cover >= {SCALE_MIN_MACHINES} "
            f'machines, got {entry["num_machines"]}'
        )
    if entry["load_mode"] != "mmap":
        fail(
            f'entries[{i}]: scale rows must be mmap-loaded, got load_mode '
            f'{entry["load_mode"]!r}'
        )
    if entry["resident_after_load_bytes"] * SCALE_RESIDENCY_FACTOR > entry["file_bytes"]:
        fail(
            f'entries[{i}]: resident_after_load_bytes '
            f'({entry["resident_after_load_bytes"]}) is not an order of '
            f'magnitude under file_bytes ({entry["file_bytes"]}) — the '
            "mapped open materialized more than the metadata slabs"
        )
    if entry["resident_after_replay_bytes"] > (
        SCALE_REPLAY_FACTOR * entry["resident_after_load_bytes"]
    ):
        fail(
            f'entries[{i}]: resident_after_replay_bytes '
            f'({entry["resident_after_replay_bytes"]}) exceeds '
            f'{SCALE_REPLAY_FACTOR}x the open footprint '
            f'({entry["resident_after_load_bytes"]}) — the replay is not '
            "returning finished machines' bulk pages to the kernel"
        )


def check_entry(i, entry):
    for legacy in (
        "serial_machine_steps_per_sec",
        "sharded_machine_steps_per_sec",
        "speedup",
    ):
        if legacy in entry:
            fail(
                f"entries[{i}] carries legacy v1 field {legacy!r}; "
                "v2+ rows record one lane each"
            )
    check_field_types(i, entry, ENTRY_FIELDS)
    for field in POSITIVE_FIELDS:
        if entry[field] <= 0:
            fail(f"entries[{i}].{field} must be positive, got {entry[field]}")
    if entry["placement_attempts"] < entry["tasks_placed"]:
        fail(
            f"entries[{i}]: placement_attempts ({entry['placement_attempts']}) "
            f"< tasks_placed ({entry['tasks_placed']})"
        )
    if entry["threads"] == 1:
        if entry["parallel"]:
            fail(
                f"entries[{i}]: threads=1 labeled as sharded (parallel=true) — "
                "single-thread rows must be the serial baseline"
            )
        if entry["parallel_speedup"] != 1.0:
            fail(
                f"entries[{i}]: serial baseline must have parallel_speedup 1.0, "
                f'got {entry["parallel_speedup"]}'
            )
    elif not entry["parallel"]:
        fail(f"entries[{i}]: threads={entry['threads']} but parallel=false")
    if any(field in entry for field in V3_FIELDS):
        check_field_types(i, entry, V3_FIELDS)
        if entry["peak_rss_bytes"] <= 0:
            fail(
                f"entries[{i}].peak_rss_bytes must be positive, "
                f'got {entry["peak_rss_bytes"]}'
            )
        if entry["load_mode"] != "generated" or entry["load_ms"] != 0:
            fail(
                f"entries[{i}]: matrix lanes generate their cell in-process — "
                f'expected load_mode "generated" with load_ms 0, got '
                f'{entry["load_mode"]!r} / {entry["load_ms"]}'
            )


def check_matrix(matrix_id, rows):
    threads = {row["threads"] for row in rows}
    complete = REQUIRED_THREADS.issubset(threads)
    first = rows[0]
    for row in rows[1:]:
        for field in ("mode", "num_machines", "num_intervals"):
            if row[field] != first[field]:
                fail(
                    f"matrix {matrix_id!r}: rows disagree on {field} "
                    f"({row[field]} vs {first[field]}) — lanes timed different workloads"
                )
        for field in ("placement_attempts", "tasks_placed"):
            if row[field] != first[field]:
                fail(
                    f"matrix {matrix_id!r}: rows disagree on {field} "
                    f"({row[field]} vs {first[field]}) — the determinism contract "
                    "requires identical placements at every pool size"
                )
    # A matrix recorded with the v3 memory columns must carry them on every
    # row; a half-migrated matrix would make its rows incomparable.
    if any(any(field in row for field in V3_FIELDS) for row in rows):
        for row in rows:
            for field in V3_FIELDS:
                if field not in row:
                    fail(
                        f"matrix {matrix_id!r}: some rows carry the v3 memory "
                        f"columns but one is missing {field!r}"
                    )
    if first["mode"] == "full" and complete:
        if first["num_machines"] < FULL_MIN_MACHINES:
            fail(
                f"matrix {matrix_id!r}: full mode requires >= {FULL_MIN_MACHINES} "
                f'machines, got {first["num_machines"]}'
            )
        for row in rows:
            if row["threads"] != SPEEDUP_TARGET_THREADS:
                continue
            if row["host_cores"] >= SPEEDUP_TARGET_THREADS:
                if row["parallel_speedup"] < SPEEDUP_TARGET:
                    fail(
                        f"matrix {matrix_id!r}: parallel_speedup at "
                        f"{SPEEDUP_TARGET_THREADS} threads is "
                        f'{row["parallel_speedup"]}, target >= {SPEEDUP_TARGET}'
                    )
            else:
                print(
                    f"check_bench_cluster: NOTE: matrix {matrix_id!r} speedup target "
                    f'waived — recorded on a {row["host_cores"]}-core host, which '
                    f"cannot measure {SPEEDUP_TARGET_THREADS}-thread scaling"
                )
    return complete


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_cluster.json"
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except FileNotFoundError:
        fail(f"{path} not found")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if not isinstance(data, dict):
        fail("top level must be an object")
    if data.get("schema") != REQUIRED_SCHEMA:
        fail(f'schema must be "{REQUIRED_SCHEMA}", got {data.get("schema")!r}')
    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        fail('"entries" must be a non-empty array')

    matrices = {}
    scale_rows = 0
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            fail(f"entries[{i}] must be an object")
        mode = entry.get("mode")
        if mode == "scale":
            check_scale_entry(i, entry)
            scale_rows += 1
        elif mode in ("short", "full"):
            check_entry(i, entry)
            matrices.setdefault(entry["matrix"], []).append(entry)
        else:
            fail(
                f'entries[{i}].mode must be "short", "full", or "scale", '
                f"got {mode!r}"
            )

    complete = sum(1 for mid, rows in matrices.items() if check_matrix(mid, rows))
    if complete == 0:
        required = sorted(REQUIRED_THREADS)
        fail(f"no complete thread matrix: need rows at threads {required}")

    print(
        f"check_bench_cluster: OK: {path} has {len(entries)} well-formed entries "
        f"in {len(matrices)} matrices ({complete} complete, "
        f"{scale_rows} scale rows)"
    )


if __name__ == "__main__":
    main()
