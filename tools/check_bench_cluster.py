#!/usr/bin/env python3
"""Validates a tracked BENCH_cluster.json thread-scaling matrix.

Usage: check_bench_cluster.py [path]   (default: BENCH_cluster.json)

Schema checks (field presence, types, sanity) plus the matrix rules
introduced with the sharded placement engine (schema v4). v3 files are
refused outright: their rows carry neither the reference/sharded split nor
the packing-quality columns, so none of the v4 gates can run against them —
regenerate the file with the current bench instead of mixing schemas.

Matrix rows (mode "short"/"full") and their rules:

- Rows carry the pool size actually used (`threads`), whether the sharded
  step loop ran (`parallel`), and the placement engine configuration
  (`placement_shards`: 0 = the global single-treap scheduler, >= 2 = the
  sharded engine). A `threads: 1` row must be serial (`parallel: false`,
  `parallel_speedup: 1.0`).
- Rows group into matrices (`matrix` id). A v4 matrix is one reference lane
  (threads 1, placement_shards 0) plus sharded lanes at a single shard
  count. The file must contain at least one complete matrix whose sharded
  lanes cover threads {1, 4, 8, 16}; rows within a matrix must agree on the
  workload, and sharded rows must agree on the placement counters — the
  determinism contract says a fixed (seed, shards) places exactly the same
  tasks at every pool size, so diverging counters mean the lanes timed
  different computations. (The reference lane is a different engine and
  legitimately differs.)
- Packing-quality gates, sharded rows vs the reference row: sharding
  partitions the feasibility question, so some placements the global treap
  would make get deferred to the steal phase or retried next interval. The
  gates bound that cost: tasks_placed >= 97% of reference,
  violation_rate_p90 <= reference + 0.02, pending_task_intervals <=
  2x reference + 2000, tasks_timed_out <= 2x reference + 100. (Measured at
  2048 machines / 8 shards the engine places 99.9% of the reference's tasks
  at identical p90 violation rate; pending roughly doubles because deferred
  placements wait out the interval.)
- Full-mode matrices must use the enlarged problem size (>= 2048 machines).
- Speedup targets, checked only when the recording host had >= 8 cores
  (`host_cores`) — a waiver is printed otherwise, because a 1-core container
  cannot measure parallelism no matter how contention-free the engine is:
  (a) the sharded 8-thread row must reach parallel_speedup >= 4.0 on
  machine-steps (vs the 1-thread sharded lane), and (b) its isolated
  generator placement phase (`placement_phase_per_sec`) must reach >= 3x the
  1-thread sharded lane's — the placement-parallelism claim this PR's
  engine exists for. Absolute-rate thresholds are deliberately absent: CI
  runners vary too much for them to gate a merge.
- Every row carries the memory columns: `peak_rss_bytes` (positive),
  `load_ms` (>= 0), `load_mode`. Matrix lanes generate their cell
  in-process, so their rows must say load_mode "generated" with load_ms 0.

`mode: "scale"` rows are the streamed-generation / mmap-load / streaming-
replay pipeline record (one row per run, never part of a thread matrix):

- They must cover >= 100000 machines, say load_mode "mmap" with a positive
  load_ms, and carry the full I/O story: gen_ms, file_bytes, events_per_sec,
  peak_rss_bytes, resident_after_load_bytes, resident_after_replay_bytes.
- v4 adds the placement story: `placement_shards` (>= 1 — the scale lane
  always runs the sharded engine; 1 shard degenerates to the global policy),
  `placement_ms`, `placement_attempts`, and `placements_per_sec`, so the
  tracked history shows what fraction of gen_ms the placement phase is.
- The zero-copy claim is gated on the arena itself, in two steps. The open:
  resident_after_load_bytes (trace-file pages this process materialized)
  must be an order of magnitude under file_bytes — the mapped load touches
  only the metadata slabs the validator reads. The replay:
  resident_after_replay_bytes must stay within 4x of the open's footprint
  even though the replay read every byte of the file — that is what proves
  the blocked page drops return the bulk slabs to the kernel as machines
  finish (a replay that materialized them sits at ~file_bytes, 10-20x over
  this gate; the 4x covers the extra metadata columns a replay legitimately
  touches beyond what validation did). Whole-process peak_rss_bytes is
  recorded but not gated against the file: it is dominated by the replayer's
  per-machine predictor state, which scales with the cell no matter how the
  trace is loaded.
"""

import sys

from bench_check_lib import Checker

REQUIRED_SCHEMA = "crf-cluster-bench-v4"
REQUIRED_THREADS = {1, 4, 8, 16}
SPEEDUP_TARGET_THREADS = 8
SPEEDUP_TARGET = 4.0
PLACEMENT_SPEEDUP_TARGET = 3.0
FULL_MIN_MACHINES = 2048
SCALE_MIN_MACHINES = 100000
SCALE_RESIDENCY_FACTOR = 10
SCALE_REPLAY_FACTOR = 4

# Packing-quality tolerances: sharded rows vs the matrix's reference row.
QUALITY_MIN_PLACED_RATIO = 0.97
QUALITY_VIOLATION_P90_SLACK = 0.02
QUALITY_PENDING_FACTOR = 2
QUALITY_PENDING_SLACK = 2000
QUALITY_TIMEOUT_FACTOR = 2
QUALITY_TIMEOUT_SLACK = 100

ENTRY_FIELDS = {
    "date": str,
    "mode": str,
    "matrix": str,
    "threads": int,
    "parallel": bool,
    "host_cores": int,
    "placement_shards": int,
    "num_machines": int,
    "num_intervals": int,
    "machine_steps_per_sec": (int, float),
    "placements_per_sec": (int, float),
    "parallel_speedup": (int, float),
    "placement_attempts": int,
    "tasks_placed": int,
    "tasks_timed_out": int,
    "pending_task_intervals": int,
    "violation_rate_p90": (int, float),
    "placement_phase_ms": (int, float),
    "placement_phase_per_sec": (int, float),
    "peak_rss_bytes": int,
    "load_ms": (int, float),
    "load_mode": str,
}

POSITIVE_FIELDS = [
    "threads",
    "host_cores",
    "num_machines",
    "num_intervals",
    "machine_steps_per_sec",
    "placements_per_sec",
    "parallel_speedup",
    "placement_phase_ms",
    "placement_phase_per_sec",
    "peak_rss_bytes",
]

NON_NEGATIVE_FIELDS = [
    "placement_shards",
    "tasks_timed_out",
    "pending_task_intervals",
    "violation_rate_p90",
    "load_ms",
]

SCALE_FIELDS = {
    "date": str,
    "mode": str,
    "matrix": str,
    "threads": int,
    "parallel": bool,
    "host_cores": int,
    "placement_shards": int,
    "num_machines": int,
    "num_intervals": int,
    "num_tasks": int,
    "placement_probes": int,
    "placement_ms": (int, float),
    "placement_attempts": int,
    "placements_per_sec": (int, float),
    "file_bytes": int,
    "gen_ms": (int, float),
    "gen_peak_rss_bytes": int,
    "load_ms": (int, float),
    "load_mode": str,
    "resident_after_load_bytes": int,
    "resident_after_replay_bytes": int,
    "events": int,
    "events_per_sec": (int, float),
    "peak_rss_bytes": int,
}

SCALE_POSITIVE_FIELDS = [
    "threads",
    "placement_shards",
    "num_machines",
    "num_intervals",
    "num_tasks",
    "placement_probes",
    "placement_ms",
    "placement_attempts",
    "placements_per_sec",
    "file_bytes",
    "gen_ms",
    "gen_peak_rss_bytes",
    "load_ms",
    "resident_after_load_bytes",
    "resident_after_replay_bytes",
    "events",
    "events_per_sec",
    "peak_rss_bytes",
]

check = Checker("check_bench_cluster")


def check_scale_entry(i, entry):
    check.check_entry_fields(i, entry, SCALE_FIELDS)
    check.check_positive(i, entry, SCALE_POSITIVE_FIELDS)
    if entry["num_machines"] < SCALE_MIN_MACHINES:
        check.fail(
            f"entries[{i}]: scale rows must cover >= {SCALE_MIN_MACHINES} "
            f'machines, got {entry["num_machines"]}'
        )
    if entry["parallel"] != (entry["threads"] > 1):
        check.fail(
            f"entries[{i}]: parallel={entry['parallel']} inconsistent with "
            f"threads={entry['threads']}"
        )
    if entry["placement_attempts"] < entry["num_tasks"]:
        check.fail(
            f"entries[{i}]: placement_attempts ({entry['placement_attempts']}) "
            f"< num_tasks ({entry['num_tasks']}) — every streamed task took at "
            "least one attempt"
        )
    if entry["load_mode"] != "mmap":
        check.fail(
            f'entries[{i}]: scale rows must be mmap-loaded, got load_mode '
            f'{entry["load_mode"]!r}'
        )
    if entry["resident_after_load_bytes"] * SCALE_RESIDENCY_FACTOR > entry["file_bytes"]:
        check.fail(
            f'entries[{i}]: resident_after_load_bytes '
            f'({entry["resident_after_load_bytes"]}) is not an order of '
            f'magnitude under file_bytes ({entry["file_bytes"]}) — the '
            "mapped open materialized more than the metadata slabs"
        )
    if entry["resident_after_replay_bytes"] > (
        SCALE_REPLAY_FACTOR * entry["resident_after_load_bytes"]
    ):
        check.fail(
            f'entries[{i}]: resident_after_replay_bytes '
            f'({entry["resident_after_replay_bytes"]}) exceeds '
            f'{SCALE_REPLAY_FACTOR}x the open footprint '
            f'({entry["resident_after_load_bytes"]}) — the replay is not '
            "returning finished machines' bulk pages to the kernel"
        )


def check_entry(i, entry):
    check.reject_legacy_fields(
        i,
        entry,
        (
            "serial_machine_steps_per_sec",
            "sharded_machine_steps_per_sec",
            "speedup",
        ),
        "v2+ rows record one lane each",
    )
    check.check_entry_fields(i, entry, ENTRY_FIELDS)
    check.check_positive(i, entry, POSITIVE_FIELDS)
    check.check_non_negative(i, entry, NON_NEGATIVE_FIELDS)
    if entry["placement_shards"] == 1:
        check.fail(
            f"entries[{i}]: placement_shards must be 0 (global engine) or "
            ">= 2 (sharded engine); a 1-shard matrix lane measures nothing"
        )
    if entry["placement_attempts"] < entry["tasks_placed"]:
        check.fail(
            f"entries[{i}]: placement_attempts ({entry['placement_attempts']}) "
            f"< tasks_placed ({entry['tasks_placed']})"
        )
    if entry["threads"] == 1:
        if entry["parallel"]:
            check.fail(
                f"entries[{i}]: threads=1 labeled as sharded (parallel=true) — "
                "single-thread rows must be the serial baseline"
            )
        if entry["parallel_speedup"] != 1.0:
            check.fail(
                f"entries[{i}]: serial baseline must have parallel_speedup 1.0, "
                f'got {entry["parallel_speedup"]}'
            )
    elif not entry["parallel"]:
        check.fail(f"entries[{i}]: threads={entry['threads']} but parallel=false")
    if entry["placement_shards"] == 0 and entry["threads"] != 1:
        check.fail(
            f"entries[{i}]: the reference lane (placement_shards 0) is the "
            f"serial global engine; threads={entry['threads']} is not a "
            "reference configuration"
        )
    if entry["load_mode"] != "generated" or entry["load_ms"] != 0:
        check.fail(
            f"entries[{i}]: matrix lanes generate their cell in-process — "
            f'expected load_mode "generated" with load_ms 0, got '
            f'{entry["load_mode"]!r} / {entry["load_ms"]}'
        )


def check_quality(matrix_id, reference, sharded):
    """Gates sharded packing quality against the matrix's reference row."""
    for row in sharded:
        label = (
            f"matrix {matrix_id!r} sharded row (threads={row['threads']}, "
            f"shards={row['placement_shards']})"
        )
        min_placed = QUALITY_MIN_PLACED_RATIO * reference["tasks_placed"]
        if row["tasks_placed"] < min_placed:
            check.fail(
                f"{label}: tasks_placed {row['tasks_placed']} is under "
                f"{QUALITY_MIN_PLACED_RATIO:.0%} of the reference's "
                f"{reference['tasks_placed']} — sharding is stranding capacity"
            )
        max_violation = reference["violation_rate_p90"] + QUALITY_VIOLATION_P90_SLACK
        if row["violation_rate_p90"] > max_violation:
            check.fail(
                f"{label}: violation_rate_p90 {row['violation_rate_p90']} "
                f"exceeds reference {reference['violation_rate_p90']} + "
                f"{QUALITY_VIOLATION_P90_SLACK}"
            )
        max_pending = (
            QUALITY_PENDING_FACTOR * reference["pending_task_intervals"]
            + QUALITY_PENDING_SLACK
        )
        if row["pending_task_intervals"] > max_pending:
            check.fail(
                f"{label}: pending_task_intervals {row['pending_task_intervals']} "
                f"exceeds {QUALITY_PENDING_FACTOR}x reference "
                f"({reference['pending_task_intervals']}) + {QUALITY_PENDING_SLACK}"
            )
        max_timed_out = (
            QUALITY_TIMEOUT_FACTOR * reference["tasks_timed_out"]
            + QUALITY_TIMEOUT_SLACK
        )
        if row["tasks_timed_out"] > max_timed_out:
            check.fail(
                f"{label}: tasks_timed_out {row['tasks_timed_out']} exceeds "
                f"{QUALITY_TIMEOUT_FACTOR}x reference "
                f"({reference['tasks_timed_out']}) + {QUALITY_TIMEOUT_SLACK}"
            )


def check_matrix(matrix_id, rows):
    first = rows[0]
    for row in rows[1:]:
        for field in ("mode", "num_machines", "num_intervals"):
            if row[field] != first[field]:
                check.fail(
                    f"matrix {matrix_id!r}: rows disagree on {field} "
                    f"({row[field]} vs {first[field]}) — lanes timed different workloads"
                )
    reference_rows = [row for row in rows if row["placement_shards"] == 0]
    sharded = [row for row in rows if row["placement_shards"] > 0]
    if not reference_rows:
        check.fail(
            f"matrix {matrix_id!r}: no reference row (placement_shards 0) — "
            "v4 matrices gate sharded quality against the global engine"
        )
    if not sharded:
        check.fail(f"matrix {matrix_id!r}: no sharded rows (placement_shards >= 2)")
    # All counters are deterministic for a fixed (seed, engine config), so
    # repeat runs appended into the same matrix must agree too.
    for group, name in ((reference_rows, "reference"), (sharded, "sharded")):
        base = group[0]
        for row in group[1:]:
            for field in ("placement_shards", "placement_attempts", "tasks_placed"):
                if row[field] != base[field]:
                    check.fail(
                        f"matrix {matrix_id!r}: {name} rows disagree on {field} "
                        f"({row[field]} vs {base[field]}) — the determinism "
                        "contract requires identical placements at every pool size"
                    )
    check_quality(matrix_id, reference_rows[0], sharded)

    sharded_threads = {row["threads"] for row in sharded}
    complete = REQUIRED_THREADS.issubset(sharded_threads)
    if first["mode"] == "full" and complete:
        if first["num_machines"] < FULL_MIN_MACHINES:
            check.fail(
                f"matrix {matrix_id!r}: full mode requires >= {FULL_MIN_MACHINES} "
                f'machines, got {first["num_machines"]}'
            )
        base_phase = next(
            row["placement_phase_per_sec"] for row in sharded if row["threads"] == 1
        )
        for row in sharded:
            if row["threads"] != SPEEDUP_TARGET_THREADS:
                continue
            if row["host_cores"] >= SPEEDUP_TARGET_THREADS:
                if row["parallel_speedup"] < SPEEDUP_TARGET:
                    check.fail(
                        f"matrix {matrix_id!r}: parallel_speedup at "
                        f"{SPEEDUP_TARGET_THREADS} threads is "
                        f'{row["parallel_speedup"]}, target >= {SPEEDUP_TARGET}'
                    )
                phase_speedup = row["placement_phase_per_sec"] / base_phase
                if phase_speedup < PLACEMENT_SPEEDUP_TARGET:
                    check.fail(
                        f"matrix {matrix_id!r}: placement-phase speedup at "
                        f"{SPEEDUP_TARGET_THREADS} threads is {phase_speedup:.2f}x "
                        f"the 1-thread sharded lane, target >= "
                        f"{PLACEMENT_SPEEDUP_TARGET}"
                    )
            else:
                check.note(
                    f"matrix {matrix_id!r} speedup "
                    f"targets waived — recorded on a {row['host_cores']}-core "
                    f"host, which cannot measure {SPEEDUP_TARGET_THREADS}-thread "
                    "scaling"
                )
    return complete


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_cluster.json"
    entries = check.load(
        path,
        REQUIRED_SCHEMA,
        "pre-v4 records lack the reference/sharded split; regenerate the "
        "file with the current bench",
    )

    matrices = {}
    scale_rows = 0
    for i, entry in enumerate(entries):
        check.require_object(i, entry)
        mode = entry.get("mode")
        if mode == "scale":
            check_scale_entry(i, entry)
            scale_rows += 1
        elif mode in ("short", "full"):
            check_entry(i, entry)
            matrices.setdefault(entry["matrix"], []).append(entry)
        else:
            check.fail(
                f'entries[{i}].mode must be "short", "full", or "scale", '
                f"got {mode!r}"
            )

    complete = sum(1 for mid, rows in matrices.items() if check_matrix(mid, rows))
    if complete == 0:
        required = sorted(REQUIRED_THREADS)
        check.fail(
            f"no complete thread matrix: need sharded rows at threads {required} "
            "plus a reference row"
        )

    check.ok(
        f"{path} has {len(entries)} well-formed entries "
        f"in {len(matrices)} matrices ({complete} complete, "
        f"{scale_rows} scale rows)"
    )


if __name__ == "__main__":
    main()
