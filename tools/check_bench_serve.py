#!/usr/bin/env python3
"""Validates a tracked BENCH_serve.json network-serve matrix.

Usage: check_bench_serve.py [path]   (default: BENCH_serve.json)

Schema checks (field presence, types, sanity) plus the rules specific to the
TCP serve tier:

- `bit_identical` must be true on EVERY row, regardless of host: each bench
  lane replays the full trace over loopback and bit-compares the server's end
  state against an in-process replay, so a false here means the wire path
  corrupted predictor state. There is no waiver for correctness.
- Rows group into matrices (`matrix` id). The file must contain at least one
  complete matrix covering client counts {1, 4, 8}; rows within a matrix must
  describe the same workload (same event count and cell shape) or the lanes
  timed different traces.
- Throughput target: in every complete matrix, the 4-client row must sustain
  >= 1M events/s aggregate ingest — checked only when the recording host had
  >= 4 cores (`host_cores`); a waiver is printed otherwise, following the
  check_bench_stream.py convention, because a starved container measures the
  scheduler, not the serve tier. Latency thresholds are deliberately absent:
  CI runners vary too much for absolute p99s to gate a merge.
"""

import sys

from bench_check_lib import Checker

REQUIRED_SCHEMA = "crf-serve-bench-v1"
REQUIRED_CLIENTS = {1, 4, 8}
THROUGHPUT_TARGET_CLIENTS = 4
THROUGHPUT_TARGET_EVENTS_PER_SEC = 1_000_000
THROUGHPUT_MIN_HOST_CORES = 4

ENTRY_FIELDS = {
    "date": str,
    "mode": str,
    "matrix": str,
    "clients": int,
    "host_cores": int,
    "num_machines": int,
    "num_intervals": int,
    "num_shards": int,
    "events": int,
    "events_per_sec": (int, float),
    "ingest_p99_ns": (int, float),
    "machine_query_p99_ns": (int, float),
    "admission_p99_ns": (int, float),
    "bit_identical": bool,
}

POSITIVE_FIELDS = [
    "clients",
    "host_cores",
    "num_machines",
    "num_intervals",
    "num_shards",
    "events",
    "events_per_sec",
    "ingest_p99_ns",
]

NON_NEGATIVE_FIELDS = [
    "machine_query_p99_ns",
    "admission_p99_ns",
]

check = Checker("check_bench_serve")


def check_entry(i, entry):
    check.require_object(i, entry)
    check.check_entry_fields(i, entry, ENTRY_FIELDS)
    check.check_positive(i, entry, POSITIVE_FIELDS)
    check.check_non_negative(i, entry, NON_NEGATIVE_FIELDS)
    check.check_mode(i, entry)
    if not entry["bit_identical"]:
        check.fail(
            f"entries[{i}]: bit_identical is false — the wire ingest path "
            "diverged from in-process replay; this is a correctness bug, "
            "not a perf regression"
        )


def check_matrix(matrix_id, rows):
    clients = {row["clients"] for row in rows}
    complete = REQUIRED_CLIENTS.issubset(clients)
    first = rows[0]
    for row in rows[1:]:
        for field in ("mode", "num_machines", "num_intervals", "num_shards", "events"):
            if row[field] != first[field]:
                check.fail(
                    f"matrix {matrix_id!r}: rows disagree on {field} "
                    f"({row[field]} vs {first[field]}) — lanes timed different workloads"
                )
    if complete:
        for row in rows:
            if row["clients"] != THROUGHPUT_TARGET_CLIENTS:
                continue
            if row["host_cores"] >= THROUGHPUT_MIN_HOST_CORES:
                if row["events_per_sec"] < THROUGHPUT_TARGET_EVENTS_PER_SEC:
                    check.fail(
                        f"matrix {matrix_id!r}: {row['events_per_sec']:.0f} events/s "
                        f"at {THROUGHPUT_TARGET_CLIENTS} clients, target >= "
                        f"{THROUGHPUT_TARGET_EVENTS_PER_SEC}"
                    )
            else:
                check.note(
                    f"matrix {matrix_id!r} throughput target waived — recorded "
                    f'on a {row["host_cores"]}-core host, which cannot feed '
                    f"{THROUGHPUT_TARGET_CLIENTS} client threads"
                )
    return complete


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_serve.json"
    entries = check.load(path, REQUIRED_SCHEMA)

    matrices = {}
    for i, entry in enumerate(entries):
        check_entry(i, entry)
        matrices.setdefault(entry["matrix"], []).append(entry)

    complete = sum(1 for mid, rows in matrices.items() if check_matrix(mid, rows))
    if complete == 0:
        required = sorted(REQUIRED_CLIENTS)
        check.fail(f"no complete client matrix: need rows at clients {required}")

    check.ok(
        f"{path} has {len(entries)} well-formed entries "
        f"in {len(matrices)} matrices ({complete} complete)"
    )


if __name__ == "__main__":
    main()
