"""Shared helpers for the tracked-benchmark checkers (check_bench_*.py).

Each checker validates one tracked BENCH_*.json record: a top-level object
{"schema": "<name>-vN", "entries": [...]} that benches append to. The four
scripts used to hand-roll the same boilerplate — the fail/exit wrapper, the
load-and-validate-top-level dance, the typed-field walk with the bool/int
isinstance trap, and the positive/non-negative sweeps. That lives here now;
the scripts keep only their schema tables and the gates specific to what
their bench measures.

Usage:

    from bench_check_lib import Checker

    check = Checker("check_bench_foo")
    entries = check.load(path, "crf-foo-bench-v2")
    for i, entry in enumerate(entries):
        check.require_object(i, entry)
        check.check_entry_fields(i, entry, ENTRY_FIELDS)
        check.check_positive(i, entry, POSITIVE_FIELDS)
    check.ok(f"{path} has {len(entries)} well-formed entries")

All failures print "<tool>: FAIL: <message>" to stderr and exit(1), so CI
logs attribute the failure to the right checker.
"""

import json
import sys


class Checker:
    """One tracked-bench validation run; `tool` prefixes every message."""

    def __init__(self, tool):
        self.tool = tool

    def fail(self, message):
        print(f"{self.tool}: FAIL: {message}", file=sys.stderr)
        sys.exit(1)

    def note(self, message):
        print(f"{self.tool}: NOTE: {message}")

    def ok(self, message):
        print(f"{self.tool}: OK: {message}")

    def load(self, path, required_schema, schema_hint=""):
        """Loads a tracked file and validates the envelope; returns entries.

        `schema_hint` is appended to the schema-mismatch diagnostic (e.g. why
        older versions are refused and how to regenerate).
        """
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except FileNotFoundError:
            self.fail(f"{path} not found")
        except json.JSONDecodeError as e:
            self.fail(f"{path} is not valid JSON: {e}")

        if not isinstance(data, dict):
            self.fail("top level must be an object")
        if data.get("schema") != required_schema:
            message = f'schema must be "{required_schema}", got {data.get("schema")!r}'
            if schema_hint:
                message += f" — {schema_hint}"
            self.fail(message)
        entries = data.get("entries")
        if not isinstance(entries, list) or not entries:
            self.fail('"entries" must be a non-empty array')
        return entries

    def require_object(self, i, entry):
        if not isinstance(entry, dict):
            self.fail(f"entries[{i}] must be an object")

    def check_entry_fields(self, i, entry, fields):
        """Presence + type check. `fields` maps name -> type or type tuple.

        bool is special-cased twice: a field declared bool must be exactly
        bool, and a field declared numeric must NOT be bool (isinstance(True,
        int) holds in Python, so a bare isinstance check would wave bools
        through int columns).
        """
        for field, types in fields.items():
            if field not in entry:
                self.fail(f"entries[{i}] missing field {field!r}")
            value = entry[field]
            if types is bool:
                if not isinstance(value, bool):
                    self.fail(f"entries[{i}].{field} must be a bool, got {value!r}")
            elif not isinstance(value, types) or isinstance(value, bool):
                self.fail(f"entries[{i}].{field} has wrong type: {value!r}")

    def check_positive(self, i, entry, fields):
        for field in fields:
            if entry[field] <= 0:
                self.fail(f"entries[{i}].{field} must be positive, got {entry[field]}")

    def check_non_negative(self, i, entry, fields):
        for field in fields:
            if entry[field] < 0:
                self.fail(f"entries[{i}].{field} must be >= 0, got {entry[field]}")

    def check_mode(self, i, entry, allowed=("short", "full")):
        if entry["mode"] not in allowed:
            names = " or ".join(f'"{m}"' for m in allowed)
            self.fail(f"entries[{i}].mode must be {names}, got {entry['mode']!r}")

    def reject_legacy_fields(self, i, entry, legacy_fields, reason):
        for legacy in legacy_fields:
            if legacy in entry:
                self.fail(f"entries[{i}] carries legacy field {legacy!r}; {reason}")
