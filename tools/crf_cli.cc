// crf — command-line driver for the overcommit simulator.
//
// Subcommands:
//   crf generate --cell=a --days=7 [--machines=N] [--rich] [--seed=S] --out=FILE
//                [--binary] [--stream] [--probes=K] [--placement-shards=S]
//                [--rebalance-interval=R] [--threads=T]
//       Synthesize a cell trace and save it (text by default, --binary for
//       the zero-copy arena format; loaders auto-detect either). --stream
//       generates straight into the binary file machine block by machine
//       block, so cells far larger than memory can be emitted; the streamed
//       file holds the same cell with tasks renumbered machine-major.
//   crf info --trace=FILE [--mmap]
//       Print a trace's workload statistics. --mmap (binary traces only, any
//       subcommand that reads --trace/--replay) maps the arena zero-copy
//       instead of heap-loading it; `info` then reports page residency.
//   crf convert --trace=FILE --out=FILE [--binary]
//       Re-encode a trace between the text and binary formats.
//   crf simulate (--trace=FILE | --cell=a --days=7 [--machines=N] [--seed=S])
//                [--predictor=SPEC] [--horizon-hours=24] [--all-classes]
//       Run the trace-driven simulator; prints violation/savings metrics.
//   crf cluster --cell=production_3 [--machines=N] [--days=14]
//               [--predictor=SPEC] [--packing=best-fit] [--seed=S]
//       Run the closed-loop Borg-like simulation; prints group metrics.
//   crf serve --replay=FILE [--predictor=SPEC] [--shards=16] [--no-parallel]
//             [--checkpoint-out=FILE --checkpoint-at=TICK [--stop-after-checkpoint]]
//             [--resume=FILE] [--metrics-out=FILE]
//       Stream the trace through the online serve layer. Results on stdout
//       are deterministic (bit-identical at any thread count); throughput
//       goes to stderr. SIGINT/SIGTERM stop the replay at the next day
//       boundary and seal a resumable checkpoint to --checkpoint-out.
//   crf serve --listen=HOST:PORT ... [--port-file=FILE] [--max-conns=N]
//       Instead of replaying locally, expose the serve tier over TCP
//       (CRFNET1 wire protocol, DESIGN.md §10). --checkpoint-out becomes the
//       shutdown op's seal target; once clients have streamed the whole
//       trace, the same deterministic results are printed on exit.
//   crf loadgen --connect=HOST:PORT (--trace=FILE | --cell=a ...)
//               [--clients=K] [--batch-ticks=N] [--until=T] [--predictor=SPEC]
//               [--shards=16] [--no-verify] [--no-shutdown]
//       Replay a trace over the wire against `crf serve --listen` from K
//       client connections; reports events/s and per-op p50/p99/p999, then
//       verifies the server's end state bit-for-bit against an in-process
//       replay and (by default) sends the shutdown op.
//   crf checkpoint --file=FILE
//       Inspect a serve checkpoint's header.
//
// Predictor SPEC grammar (crf/core/spec_parser.h):
//   limit-sum | borg-default[:phi] | rc-like[:pct] | n-sigma[:n]
//   | autopilot[:pct[:margin]] | max(SPEC,SPEC,...)
//
// Cells: a..h (trace cells) and production_1..production_5.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <optional>
#include <string>

#include "crf/cluster/ab_experiment.h"
#include "crf/core/spec_parser.h"
#include "crf/net/loadgen.h"
#include "crf/net/server.h"
#include "crf/serve/checkpoint.h"
#include "crf/serve/replay.h"
#include "crf/sim/simulator.h"
#include "crf/trace/generator.h"
#include "crf/trace/trace_io.h"
#include "crf/trace/trace_stats.h"
#include "crf/util/arg_parse.h"
#include "crf/util/table.h"

namespace crf {
namespace {

// --key=value / --flag argument map with typed accessors.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        ok_ = false;
        error_ = "unexpected argument: " + arg;
        return;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg] = "true";
      } else {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      }
    }
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  std::optional<std::string> Get(const std::string& key) {
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt : std::optional<std::string>(it->second);
  }
  std::string GetOr(const std::string& key, const std::string& fallback) {
    return Get(key).value_or(fallback);
  }
  double GetDouble(const std::string& key, double fallback) {
    const auto value = Get(key);
    return value.has_value() ? std::strtod(value->c_str(), nullptr) : fallback;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) {
    const auto value = Get(key);
    return value.has_value() ? std::strtoll(value->c_str(), nullptr, 10) : fallback;
  }
  bool GetBool(const std::string& key) { return Get(key).value_or("") == "true"; }

  // Any flag that was passed but never consumed is a typo.
  std::optional<std::string> UnknownFlag() const {
    for (const auto& [key, value] : values_) {
      if (consumed_.find(key) == consumed_.end()) {
        return key;
      }
    }
    return std::nullopt;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
  bool ok_ = true;
  std::string error_;
};

std::optional<CellProfile> ResolveProfile(const std::string& name) {
  if (name.size() == 1 && name[0] >= 'a' && name[0] <= 'h') {
    return SimCellProfile(name[0]);
  }
  if (name.rfind("cell_", 0) == 0 && name.size() == 6) {
    return SimCellProfile(name[5]);
  }
  if (name.rfind("production_", 0) == 0) {
    const int index = std::atoi(name.c_str() + strlen("production_"));
    if (index >= 1 && index <= 5) {
      return ProductionCellProfile(index);
    }
  }
  return std::nullopt;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "crf: %s\n", message.c_str());
  return 2;
}

// SIGINT/SIGTERM request a graceful stop: the replay loop breaks at its next
// chunk boundary (sealing a checkpoint if --checkpoint-out is set) and a
// network server seals-and-stops through OvercommitServer::Wait.
std::atomic<bool> g_stop{false};

void InstallStopHandlers() {
  g_stop.store(false);
  std::signal(SIGINT, [](int) { g_stop.store(true); });
  std::signal(SIGTERM, [](int) { g_stop.store(true); });
}

// Strict flag accessor: an absent flag yields `fallback`; a present one must
// parse in full as an integer in [min_value, max_value] (arg_parse.h
// diagnostics name the flag and the offending text).
bool GetIntFlag(Args& args, const std::string& key, int64_t fallback, int64_t min_value,
                int64_t max_value, int64_t* value, std::string* error) {
  const auto text = args.Get(key);
  if (!text.has_value()) {
    *value = fallback;
    return true;
  }
  return ParseIntFlag(key, *text, min_value, max_value, value, error);
}

TraceLoadOptions LoadOptionsFromArgs(Args& args) {
  TraceLoadOptions load;
  if (args.GetBool("mmap")) {
    load.mode = TraceLoadMode::kMapped;
  }
  return load;
}

// --threads=N: total worker threads for generation / simulation / replay.
// 0 (default) or 1 runs serially; results never depend on the value. On a
// malformed value, returns nullptr with `error` set.
std::unique_ptr<ThreadPool> PoolFromArgs(Args& args, std::string& error) {
  int64_t threads = 0;
  if (!GetIntFlag(args, "threads", 0, 0, 1024, &threads, &error)) {
    return nullptr;
  }
  if (threads > 1) {
    return std::make_unique<ThreadPool>(static_cast<int>(threads));
  }
  return nullptr;
}

// Sharded-placement knobs shared by generate/simulate/serve cell synthesis
// and `crf cluster`. --placement-shards=S > 0 selects the sharded engine
// (part of the cell/run identity, like the seed); --rebalance-interval=R
// sets batches between cross-shard summary refreshes.
bool PlacementArgsInto(Args& args, int& shards, int& rebalance_interval, std::string& error) {
  int64_t parsed_shards = 0;
  int64_t parsed_interval = 0;
  if (!GetIntFlag(args, "placement-shards", 0, 0, 4096, &parsed_shards, &error) ||
      !GetIntFlag(args, "rebalance-interval", 8, 1, 1 << 20, &parsed_interval, &error)) {
    return false;
  }
  shards = static_cast<int>(parsed_shards);
  rebalance_interval = static_cast<int>(parsed_interval);
  return true;
}

std::optional<CellTrace> BuildOrLoadCell(Args& args, std::string& error) {
  const TraceLoadOptions load = LoadOptionsFromArgs(args);
  const auto trace_path = args.Get("trace");
  if (trace_path.has_value()) {
    std::string load_error;
    auto cell = LoadCellTrace(*trace_path, load, &load_error);
    if (!cell.has_value()) {
      error = "cannot load trace " + *trace_path +
              (load_error.empty() ? "" : ": " + load_error);
    }
    return cell;
  }
  const std::string cell_name = args.GetOr("cell", "a");
  auto profile = ResolveProfile(cell_name);
  if (!profile.has_value()) {
    error = "unknown cell '" + cell_name + "' (use a..h or production_1..5)";
    return std::nullopt;
  }
  profile->num_machines =
      static_cast<int>(args.GetInt("machines", profile->num_machines));
  GeneratorOptions options;
  options.num_intervals =
      static_cast<Interval>(args.GetDouble("days", 7.0) * kIntervalsPerDay);
  options.rich_stats = args.GetBool("rich");
  options.placement_probes = static_cast<int>(args.GetInt("probes", 0));
  if (!PlacementArgsInto(args, options.placement_shards,
                         options.placement_rebalance_interval, error)) {
    return std::nullopt;
  }
  const auto pool = PoolFromArgs(args, error);
  if (!error.empty()) {
    return std::nullopt;
  }
  options.pool = pool.get();
  const Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  return GenerateCellTrace(*profile, options, rng);
}

int CmdGenerate(Args& args) {
  const auto out = args.Get("out");
  if (!out.has_value()) {
    return Fail("generate requires --out=FILE");
  }
  const bool binary = args.GetBool("binary");
  const bool stream = args.GetBool("stream");
  if (stream) {
    // Streaming generation writes the binary file directly; it never holds
    // the sealed cell, so it cannot start from --trace or emit text.
    if (args.Get("trace").has_value()) {
      return Fail("--stream generates a fresh cell; it cannot re-save --trace=FILE");
    }
    const std::string cell_name = args.GetOr("cell", "a");
    auto profile = ResolveProfile(cell_name);
    if (!profile.has_value()) {
      return Fail("unknown cell '" + cell_name + "' (use a..h or production_1..5)");
    }
    profile->num_machines =
        static_cast<int>(args.GetInt("machines", profile->num_machines));
    GeneratorOptions options;
    options.num_intervals =
        static_cast<Interval>(args.GetDouble("days", 7.0) * kIntervalsPerDay);
    options.rich_stats = args.GetBool("rich");
    options.placement_probes = static_cast<int>(args.GetInt("probes", 0));
    std::string arg_error;
    if (!PlacementArgsInto(args, options.placement_shards,
                           options.placement_rebalance_interval, arg_error)) {
      return Fail(arg_error);
    }
    const auto pool = PoolFromArgs(args, arg_error);
    if (!arg_error.empty()) {
      return Fail(arg_error);
    }
    options.pool = pool.get();
    const Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
    if (const auto unknown = args.UnknownFlag()) {
      return Fail("unknown flag --" + *unknown);
    }
    std::string error;
    StreamedTraceInfo info;
    if (!GenerateCellTraceToFile(*profile, options, rng, *out, &error, &info)) {
      return Fail(error);
    }
    std::printf("wrote %s (binary, streamed): %d machines, %lld tasks, %d intervals,"
                " %llu bytes\n",
                out->c_str(), profile->num_machines, static_cast<long long>(info.num_tasks),
                options.num_intervals, static_cast<unsigned long long>(info.file_bytes));
    std::fprintf(stderr, "crf: placement %.0f ms (%lld attempts, %.0f placements/s)\n",
                 info.placement_ms, static_cast<long long>(info.placement_attempts),
                 info.placement_ms > 0.0 ? info.placement_attempts * 1000.0 / info.placement_ms
                                         : 0.0);
    return 0;
  }
  std::string error;
  auto cell = BuildOrLoadCell(args, error);
  if (!cell.has_value()) {
    return Fail(error);
  }
  if (const auto unknown = args.UnknownFlag()) {
    return Fail("unknown flag --" + *unknown);
  }
  if (binary) {
    SaveCellTraceBinary(*cell, *out);
  } else {
    SaveCellTrace(*cell, *out);
  }
  std::printf("wrote %s (%s): %d machines, %d tasks, %d intervals\n", out->c_str(),
              binary ? "binary" : "text", cell->num_machines(), cell->num_tasks(),
              cell->num_intervals);
  return 0;
}

int CmdConvert(Args& args) {
  const auto out = args.Get("out");
  if (!out.has_value()) {
    return Fail("convert requires --out=FILE");
  }
  const auto trace_path = args.Get("trace");
  if (!trace_path.has_value()) {
    return Fail("convert requires --trace=FILE");
  }
  const bool binary = args.GetBool("binary");
  const TraceLoadOptions load = LoadOptionsFromArgs(args);
  if (const auto unknown = args.UnknownFlag()) {
    return Fail("unknown flag --" + *unknown);
  }
  std::string load_error;
  const auto cell = LoadCellTrace(*trace_path, load, &load_error);
  if (!cell.has_value()) {
    return Fail("cannot load trace " + *trace_path +
                (load_error.empty() ? "" : ": " + load_error));
  }
  if (binary) {
    SaveCellTraceBinary(*cell, *out);
  } else {
    SaveCellTrace(*cell, *out);
  }
  std::printf("converted %s -> %s (%s): %d machines, %d tasks, %d intervals\n",
              trace_path->c_str(), out->c_str(), binary ? "binary" : "text",
              cell->num_machines(), cell->num_tasks(), cell->num_intervals);
  return 0;
}

int CmdInfo(Args& args) {
  std::string error;
  const auto cell = BuildOrLoadCell(args, error);
  if (!cell.has_value()) {
    return Fail(error);
  }
  if (const auto unknown = args.UnknownFlag()) {
    return Fail("unknown flag --" + *unknown);
  }
  const Ecdf runtimes = TaskRuntimeHoursCdf(*cell);
  const Ecdf ratios = UsageToLimitCdf(*cell, 4);
  std::printf("cell %s: %d machines (capacity %.1f), %d tasks, %d intervals\n",
              cell->name.c_str(), cell->num_machines(), cell->TotalCapacity(),
              cell->num_tasks(), cell->num_intervals);
  Table table({"metric", "p50", "p95", "max"});
  table.AddRow("task runtime (hours)",
               {runtimes.Quantile(0.5), runtimes.Quantile(0.95), runtimes.max()});
  table.AddRow("usage/limit", {ratios.Quantile(0.5), ratios.Quantile(0.95), ratios.max()});
  table.Print();
  std::fputs(DescribeTraceLayout(ComputeTraceLayoutStats(*cell)).c_str(), stdout);
  return 0;
}

// Shared by simulate and serve so a streaming run can be diffed against the
// batch engine's output directly.
void PrintSimResultTable(const SimResult& result) {
  const Ecdf violations = result.ViolationRateCdf();
  const Ecdf savings = result.MachineSavingsCdf();
  Table table({"metric", "p50", "p90", "p99", "mean"});
  table.AddRow("per-machine violation rate",
               {violations.Quantile(0.5), violations.Quantile(0.9), violations.Quantile(0.99),
                violations.mean()});
  table.AddRow("per-machine savings", {savings.Quantile(0.5), savings.Quantile(0.9),
                                       savings.Quantile(0.99), savings.mean()});
  table.Print();
  std::printf("cell-level savings (time-mean): %.4f\n", result.MeanCellSavings());
}

int CmdSimulate(Args& args) {
  const std::string spec_text = args.GetOr("predictor", "max(n-sigma:5,rc-like:99)");
  std::string spec_error;
  const auto spec = ParsePredictorSpec(spec_text, &spec_error);
  if (!spec.has_value()) {
    return Fail("bad --predictor spec: " + spec_error);
  }
  SimOptions options;
  options.horizon =
      static_cast<Interval>(args.GetDouble("horizon-hours", 24.0) * kIntervalsPerHour);
  const bool all_classes = args.GetBool("all-classes");

  std::string error;
  auto cell = BuildOrLoadCell(args, error);
  if (!cell.has_value()) {
    return Fail(error);
  }
  if (const auto unknown = args.UnknownFlag()) {
    return Fail("unknown flag --" + *unknown);
  }
  if (!all_classes) {
    cell->FilterToServingTasks();
  }

  const SimResult result = SimulateCell(*cell, *spec, options);
  std::printf("cell %s, predictor %s, horizon %gh\n", result.cell_name.c_str(),
              result.predictor_name.c_str(), IntervalsToHours(options.horizon));
  PrintSimResultTable(result);
  return 0;
}

// The deterministic end-of-replay block shared by the local replay path and
// the network server (after clients stream the whole trace): CI diffs these
// lines across resumed, interrupted, and network-fed runs.
int PrintServeResults(StreamReplayer& replayer, const ReplayOptions& options,
                      const std::optional<std::string>& metrics_out) {
  const SimResult result = replayer.Finish();
  const ServeMetrics& metrics = replayer.Metrics();
  std::printf("cell %s, predictor %s, horizon %gh, %d shards\n", result.cell_name.c_str(),
              result.predictor_name.c_str(), IntervalsToHours(options.horizon),
              options.num_shards);
  PrintSimResultTable(result);
  std::printf("events ingested: %llu over %llu machine-ticks\n",
              static_cast<unsigned long long>(metrics.TotalEvents()),
              static_cast<unsigned long long>(metrics.TotalTicks()));
  std::fprintf(stderr, "crf: ingest rate %.0f events/s (%.3fs wall)\n",
               metrics.EventsPerSecond(), metrics.elapsed_seconds());
  if (metrics_out.has_value() && !metrics.WriteJson(*metrics_out)) {
    return Fail("cannot write metrics to " + *metrics_out);
  }
  return 0;
}

// Streaming replay through the serve layer (crf/serve). Deterministic
// results go to stdout — CI diffs a resumed run against an uninterrupted
// one — timing-derived throughput goes to stderr. With --listen the replayer
// is instead exposed over TCP (crf/net) and driven by remote clients.
int CmdServe(Args& args) {
  const std::string spec_text = args.GetOr("predictor", "max(n-sigma:5,rc-like:99)");
  std::string spec_error;
  const auto spec = ParsePredictorSpec(spec_text, &spec_error);
  if (!spec.has_value()) {
    return Fail("bad --predictor spec: " + spec_error);
  }

  ReplayOptions options;
  options.horizon =
      static_cast<Interval>(args.GetDouble("horizon-hours", 24.0) * kIntervalsPerHour);
  std::string arg_error;
  int64_t num_shards = 16;
  if (!GetIntFlag(args, "shards", 16, 1, 65536, &num_shards, &arg_error)) {
    return Fail(arg_error);
  }
  options.num_shards = static_cast<int>(num_shards);
  options.parallel = !args.GetBool("no-parallel");
  // --threads also sizes the generation pool when the cell is synthesized
  // below (BuildOrLoadCell reads the same flag).
  const auto pool = PoolFromArgs(args, arg_error);
  if (!arg_error.empty()) {
    return Fail(arg_error);
  }
  options.pool = pool.get();
  const bool all_classes = args.GetBool("all-classes");
  const auto resume_path = args.Get("resume");
  const auto checkpoint_out = args.Get("checkpoint-out");
  const int64_t checkpoint_at = args.GetInt("checkpoint-at", -1);
  const bool stop_after_checkpoint = args.GetBool("stop-after-checkpoint");
  const auto metrics_out = args.Get("metrics-out");
  const auto listen_text = args.Get("listen");
  HostPort listen;
  if (listen_text.has_value() &&
      !ParseHostPortFlag("listen", *listen_text, &listen, &arg_error)) {
    return Fail(arg_error);
  }
  const auto port_file = args.Get("port-file");
  int64_t max_conns = 64;
  if (!GetIntFlag(args, "max-conns", 64, 1, 65536, &max_conns, &arg_error)) {
    return Fail(arg_error);
  }
  if (!listen_text.has_value() && (port_file.has_value() || args.Get("max-conns"))) {
    return Fail("--port-file/--max-conns require --listen=HOST:PORT");
  }

  std::string error;
  std::optional<CellTrace> cell;
  if (const auto replay_path = args.Get("replay")) {
    std::string load_error;
    cell = LoadCellTrace(*replay_path, LoadOptionsFromArgs(args), &load_error);
    if (!cell.has_value()) {
      return Fail("cannot load trace " + *replay_path +
                  (load_error.empty() ? "" : ": " + load_error));
    }
  } else {
    cell = BuildOrLoadCell(args, error);
    if (!cell.has_value()) {
      return Fail(error);
    }
  }
  if (const auto unknown = args.UnknownFlag()) {
    return Fail("unknown flag --" + *unknown);
  }
  if (!all_classes) {
    if (cell->is_mapped()) {
      std::fprintf(stderr,
                   "crf: note: class filtering reseals the trace on the heap; use"
                   " --all-classes to keep the mmap zero-copy path\n");
    }
    cell->FilterToServingTasks();
  }

  std::unique_ptr<StreamReplayer> replayer;
  if (resume_path.has_value()) {
    // The checkpoint carries the predictor spec; --predictor is ignored.
    replayer = LoadCheckpoint(*resume_path, *cell, options, &error);
    if (replayer == nullptr) {
      return Fail("cannot resume: " + error);
    }
  } else {
    replayer = std::make_unique<StreamReplayer>(*cell, *spec, options);
  }

  if (listen_text.has_value()) {
    if (checkpoint_at >= 0 || stop_after_checkpoint) {
      return Fail("--checkpoint-at/--stop-after-checkpoint are not valid with --listen");
    }
    NetServerOptions net_options;
    net_options.host = listen.host;
    net_options.port = listen.port;
    net_options.max_connections = static_cast<int>(max_conns);
    net_options.checkpoint_out = checkpoint_out.value_or("");
    OvercommitServer server(*replayer, net_options);
    if (!server.Start(&error)) {
      return Fail(error);
    }
    if (port_file.has_value()) {
      std::FILE* out = std::fopen(port_file->c_str(), "w");
      if (out == nullptr) {
        return Fail("cannot write --port-file " + *port_file);
      }
      std::fprintf(out, "%d\n", server.port());
      std::fclose(out);
    }
    std::fprintf(stderr,
                 "crf: serving %s (%s) on %s:%d, %d shards, next tick %d/%d\n",
                 cell->name.c_str(), replayer->spec().Name().c_str(),
                 net_options.host.c_str(), server.port(), options.num_shards,
                 replayer->next_tick(), cell->num_intervals);
    InstallStopHandlers();
    server.Wait(&g_stop);
    if (server.sealed()) {
      std::printf("checkpoint written to %s at tick %d/%d\n", server.sealed_path().c_str(),
                  server.sealed_tick(), cell->num_intervals);
    }
    if (replayer->Done()) {
      return PrintServeResults(*replayer, options, metrics_out);
    }
    std::fprintf(stderr, "crf: stopped at tick %d/%d\n", replayer->next_tick(),
                 cell->num_intervals);
    if (metrics_out.has_value() && !replayer->Metrics().WriteJson(*metrics_out)) {
      return Fail("cannot write metrics to " + *metrics_out);
    }
    return 0;
  }

  if (checkpoint_out.has_value()) {
    const Interval cut = checkpoint_at >= 0 ? static_cast<Interval>(checkpoint_at)
                                            : cell->num_intervals / 2;
    if (cut < replayer->next_tick() || cut > cell->num_intervals) {
      return Fail("--checkpoint-at=" + std::to_string(cut) + " is outside [" +
                  std::to_string(replayer->next_tick()) + ", " +
                  std::to_string(cell->num_intervals) + "]");
    }
    replayer->Advance(cut);
    if (!SaveCheckpoint(*replayer, *checkpoint_out, &error)) {
      return Fail(error);
    }
    std::printf("checkpoint written to %s at tick %d/%d\n", checkpoint_out->c_str(),
                replayer->next_tick(), cell->num_intervals);
    if (stop_after_checkpoint) {
      return 0;
    }
  } else if (checkpoint_at >= 0 || stop_after_checkpoint) {
    return Fail("--checkpoint-at/--stop-after-checkpoint require --checkpoint-out=FILE");
  }

  // Chunked replay (day granularity) so SIGINT/SIGTERM can stop between
  // Advance calls and seal a resumable checkpoint — the same interval-
  // boundary cut the network shutdown op makes. Chunking never affects
  // results (Advance is bit-identical under any call slicing).
  InstallStopHandlers();
  while (!replayer->Done() && !g_stop.load()) {
    replayer->Advance(std::min<Interval>(replayer->next_tick() + kIntervalsPerDay,
                                         cell->num_intervals));
  }
  if (!replayer->Done()) {
    if (checkpoint_out.has_value()) {
      if (!SaveCheckpoint(*replayer, *checkpoint_out, &error)) {
        return Fail(error);
      }
      std::printf("checkpoint written to %s at tick %d/%d\n", checkpoint_out->c_str(),
                  replayer->next_tick(), cell->num_intervals);
    }
    std::fprintf(stderr, "crf: stopped at tick %d/%d%s\n", replayer->next_tick(),
                 cell->num_intervals,
                 checkpoint_out.has_value() ? "" : " (no --checkpoint-out; state discarded)");
    return 0;
  }
  return PrintServeResults(*replayer, options, metrics_out);
}

// Drives `crf serve --listen` over loopback/LAN: K client threads stream
// disjoint shard sets through batched ingest frames, then the server's end
// state is verified bit-for-bit against an in-process replay. The verify
// verdict and event totals on stdout are deterministic; rates and latency
// percentiles are timing-derived.
int CmdLoadgen(Args& args) {
  const auto connect = args.Get("connect");
  if (!connect.has_value()) {
    return Fail("loadgen requires --connect=HOST:PORT");
  }
  std::string arg_error;
  HostPort endpoint;
  if (!ParseHostPortFlag("connect", *connect, &endpoint, &arg_error)) {
    return Fail(arg_error);
  }
  if (endpoint.port == 0) {
    return Fail("--connect requires an explicit port");
  }
  const std::string spec_text = args.GetOr("predictor", "max(n-sigma:5,rc-like:99)");
  std::string spec_error;
  const auto spec = ParsePredictorSpec(spec_text, &spec_error);
  if (!spec.has_value()) {
    return Fail("bad --predictor spec: " + spec_error);
  }

  LoadGenOptions options;
  options.host = endpoint.host;
  options.port = endpoint.port;
  int64_t clients = 4;
  int64_t batch_ticks = 256;
  int64_t until = -1;
  int64_t shards = 16;
  if (!GetIntFlag(args, "clients", 4, 1, 256, &clients, &arg_error) ||
      !GetIntFlag(args, "batch-ticks", 256, 1, 1 << 20, &batch_ticks, &arg_error) ||
      !GetIntFlag(args, "until", -1, -1, 1 << 30, &until, &arg_error) ||
      !GetIntFlag(args, "shards", 16, 1, 65536, &shards, &arg_error)) {
    return Fail(arg_error);
  }
  options.client_threads = static_cast<int>(clients);
  options.batch_ticks = static_cast<int>(batch_ticks);
  options.until = static_cast<Interval>(until);
  options.verify = !args.GetBool("no-verify");
  options.send_shutdown = !args.GetBool("no-shutdown");
  // The verification replay must mirror the server's replay options:
  // --shards fixes the cell-series rounding, --horizon-hours the oracle.
  options.verify_options.horizon =
      static_cast<Interval>(args.GetDouble("horizon-hours", 24.0) * kIntervalsPerHour);
  options.verify_options.num_shards = static_cast<int>(shards);
  options.verify_options.parallel = false;
  const bool all_classes = args.GetBool("all-classes");

  std::string error;
  auto cell = BuildOrLoadCell(args, error);
  if (!cell.has_value()) {
    return Fail(error);
  }
  if (const auto unknown = args.UnknownFlag()) {
    return Fail("unknown flag --" + *unknown);
  }
  if (!all_classes) {
    cell->FilterToServingTasks();
  }

  LoadGenReport report;
  if (!RunLoadGen(*cell, *spec, options, &report)) {
    return Fail("loadgen: " + report.error);
  }
  std::fprintf(stderr,
               "crf: %llu events in %.3fs (%.0f events/s) over %d connections,"
               " %llu bytes out / %llu bytes in\n",
               static_cast<unsigned long long>(report.events_sent), report.elapsed_seconds,
               report.events_per_sec, options.client_threads,
               static_cast<unsigned long long>(report.bytes_sent),
               static_cast<unsigned long long>(report.bytes_received));
  Table table({"op", "count", "p50_us", "p99_us", "p999_us"});
  for (const LoadGenOpLatency& op : report.ops) {
    table.AddRow(op.op, {static_cast<double>(op.count), op.p50_ns / 1000.0,
                         op.p99_ns / 1000.0, op.p999_ns / 1000.0});
  }
  table.Print();
  std::printf("streamed %llu events over %llu machine-ticks\n",
              static_cast<unsigned long long>(report.events_sent),
              static_cast<unsigned long long>(report.ticks_sent));
  if (report.verify_ran) {
    std::printf("verify: %s (%d mismatched machines)\n",
                report.verified ? "bit-identical" : "MISMATCH", report.mismatched_machines);
  }
  if (report.shutdown_sent) {
    if (report.sealed) {
      std::printf("server sealed checkpoint %s at tick %d\n", report.checkpoint_path.c_str(),
                  report.final_tick);
    } else {
      std::printf("server stopped at tick %d (no checkpoint sealed)\n", report.final_tick);
    }
  }
  return report.verify_ran && !report.verified ? 1 : 0;
}

int CmdCheckpoint(Args& args) {
  const auto file = args.Get("file");
  if (!file.has_value()) {
    return Fail("checkpoint requires --file=FILE");
  }
  if (const auto unknown = args.UnknownFlag()) {
    return Fail("unknown flag --" + *unknown);
  }
  CheckpointInfo info;
  std::string error;
  if (!ReadCheckpointInfo(*file, &info, &error)) {
    return Fail(error);
  }
  std::printf("checkpoint %s (version %u)\n", file->c_str(), info.version);
  std::printf("  trace:    %s (%d machines, %d intervals)\n", info.trace_name.c_str(),
              info.num_machines, info.num_intervals);
  std::printf("  predictor: %s\n", info.spec_name.c_str());
  std::printf("  progress: next tick %d/%d, %d shards\n", info.next_tick, info.num_intervals,
              info.num_shards);
  std::printf("  payload:  %llu bytes\n", static_cast<unsigned long long>(info.payload_bytes));
  return 0;
}

int CmdCluster(Args& args) {
  const std::string spec_text = args.GetOr("predictor", "borg-default:0.9");
  std::string spec_error;
  const auto spec = ParsePredictorSpec(spec_text, &spec_error);
  if (!spec.has_value()) {
    return Fail("bad --predictor spec: " + spec_error);
  }
  const std::string cell_name = args.GetOr("cell", "production_1");
  auto profile = ResolveProfile(cell_name);
  if (!profile.has_value()) {
    return Fail("unknown cell '" + cell_name + "'");
  }
  profile->num_machines = static_cast<int>(args.GetInt("machines", profile->num_machines));

  ClusterSimOptions options;
  options.num_intervals =
      static_cast<Interval>(args.GetDouble("days", 14.0) * kIntervalsPerDay);
  options.warmup = std::min<Interval>(2 * kIntervalsPerDay, options.num_intervals / 4);
  options.predictor = *spec;
  const std::string packing = args.GetOr("packing", "best-fit");
  if (packing == "best-fit") {
    options.packing = PackingPolicy::kBestFit;
  } else if (packing == "worst-fit") {
    options.packing = PackingPolicy::kWorstFit;
  } else if (packing == "random-fit") {
    options.packing = PackingPolicy::kRandomFit;
  } else {
    return Fail("unknown --packing '" + packing + "'");
  }
  std::string arg_error;
  if (!PlacementArgsInto(args, options.placement_shards,
                         options.placement_rebalance_interval, arg_error)) {
    return Fail(arg_error);
  }
  const auto pool = PoolFromArgs(args, arg_error);
  if (!arg_error.empty()) {
    return Fail(arg_error);
  }
  options.pool = pool.get();
  const Rng rng(static_cast<uint64_t>(args.GetInt("seed", 42)));
  if (const auto unknown = args.UnknownFlag()) {
    return Fail("unknown flag --" + *unknown);
  }

  const ClusterSimResult result = RunClusterSim(*profile, options, rng);
  const std::vector<ClusterSimResult> results{result};
  const GroupMetrics metrics = ComputeGroupMetrics(result.predictor_name, results);
  std::printf("cell %s, predictor %s, packing %s, %g days (%d machines)\n",
              result.cell_name.c_str(), result.predictor_name.c_str(), packing.c_str(),
              IntervalsToHours(options.num_intervals) / 24.0, profile->num_machines);
  Table table({"metric", "p50", "p90"});
  table.AddRow("alloc/capacity", {metrics.normalized_allocation.Quantile(0.5),
                                  metrics.normalized_allocation.Quantile(0.9)});
  table.AddRow("usage/capacity", {metrics.normalized_workload.Quantile(0.5),
                                  metrics.normalized_workload.Quantile(0.9)});
  table.AddRow("relative savings", {metrics.relative_savings.Quantile(0.5),
                                    metrics.relative_savings.Quantile(0.9)});
  table.AddRow("machine violation rate",
               {metrics.violation_rate.Quantile(0.5), metrics.violation_rate.Quantile(0.9)});
  table.AddRow("severity p999", {metrics.severity_p999.Quantile(0.5),
                                 metrics.severity_p999.Quantile(0.9)});
  table.AddRow("max violation streak", {metrics.max_violation_streak.Quantile(0.5),
                                        metrics.max_violation_streak.Quantile(0.9)});
  table.AddRow("machine p90 latency", {metrics.machine_p90_latency.Quantile(0.5),
                                       metrics.machine_p90_latency.Quantile(0.9)});
  table.Print();
  std::printf("tasks placed %lld, timed out %lld (%lld placement attempts)\n",
              static_cast<long long>(result.tasks_placed),
              static_cast<long long>(result.tasks_timed_out),
              static_cast<long long>(result.placement_attempts));
  return 0;
}

int Usage() {
  std::fputs(
      "usage: crf <generate|info|convert|simulate|cluster|serve|loadgen|checkpoint>"
      " [--flags]\n"
      "  crf generate --cell=a --days=7 --out=FILE [--machines=N] [--rich] [--seed=S]\n"
      "               [--binary] [--stream] [--probes=K] [--placement-shards=S]\n"
      "               [--rebalance-interval=R] [--threads=T]\n"
      "  crf info     (--trace=FILE [--mmap] | --cell=a [--days=7] [--machines=N])\n"
      "  crf convert  --trace=FILE --out=FILE [--binary] [--mmap]\n"
      "  crf simulate (--trace=FILE [--mmap] | --cell=a [--days] [--machines] [--seed])\n"
      "               [--predictor=SPEC] [--horizon-hours=24] [--all-classes]\n"
      "  crf cluster  --cell=production_1 [--machines=N] [--days=14]\n"
      "               [--predictor=SPEC] [--packing=best-fit|worst-fit|random-fit]\n"
      "               [--placement-shards=S] [--rebalance-interval=R] [--threads=T]\n"
      "  crf serve    (--replay=FILE [--mmap] | --cell=a [--days] [--machines] [--seed])\n"
      "               [--predictor=SPEC] [--horizon-hours=24] [--all-classes]\n"
      "               [--shards=16] [--no-parallel] [--threads=T] [--metrics-out=FILE]\n"
      "               [--checkpoint-out=FILE --checkpoint-at=TICK\n"
      "                [--stop-after-checkpoint]] [--resume=FILE]\n"
      "               [--listen=HOST:PORT [--port-file=FILE] [--max-conns=N]]\n"
      "  crf loadgen  --connect=HOST:PORT (--trace=FILE [--mmap] | --cell=a ...)\n"
      "               [--clients=4] [--batch-ticks=256] [--until=T] [--shards=16]\n"
      "               [--predictor=SPEC] [--horizon-hours=24] [--all-classes]\n"
      "               [--no-verify] [--no-shutdown]\n"
      "  crf checkpoint --file=FILE\n"
      "SPEC: limit-sum | borg-default[:phi] | rc-like[:pct] | n-sigma[:n]\n"
      "      | autopilot[:pct[:margin]] | chance[:target] | flex[:pct[:margin]]\n"
      "      | max(SPEC,...)\n",
      stderr);
  return 2;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  if (!args.ok()) {
    return Fail(args.error());
  }
  if (command == "generate") {
    return CmdGenerate(args);
  }
  if (command == "info") {
    return CmdInfo(args);
  }
  if (command == "convert") {
    return CmdConvert(args);
  }
  if (command == "simulate") {
    return CmdSimulate(args);
  }
  if (command == "cluster") {
    return CmdCluster(args);
  }
  if (command == "serve") {
    return CmdServe(args);
  }
  if (command == "loadgen") {
    return CmdLoadgen(args);
  }
  if (command == "checkpoint") {
    return CmdCheckpoint(args);
  }
  return Usage();
}

}  // namespace
}  // namespace crf

int main(int argc, char** argv) { return crf::Run(argc, argv); }
