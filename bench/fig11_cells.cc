// Figure 11: the max predictor (n-sigma(5), rc-like(p99), 2h warm-up, 10h
// history) evaluated on all eight cells, week 1:
//   (a) per-machine violation rate per cell;
//   (b) violation severity per cell;
//   (c) cell-level savings bar per cell.
//
// Expected shape: cells behave comparably except cell b, whose unusually low
// per-machine usage variance makes the N-sigma component predict low peaks,
// so the RC-like component dominates and cell b tracks the RC-like risk
// profile (Section 5.5).

#include <cstdio>

#include "bench_common.h"
#include "crf/sim/simulator.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("fig11_cells", "Fig 11: max predictor across cells a-h");

  std::vector<Ecdf> violation_cdfs;
  std::vector<Ecdf> severity_cdfs;
  std::vector<double> savings;
  for (char letter = 'a'; letter <= 'h'; ++letter) {
    const CellTrace cell = MakeSimCell(ctx, letter, kIntervalsPerWeek);
    const SimResult result = SimulateCell(cell, SimulationMaxSpec());
    violation_cdfs.push_back(result.ViolationRateCdf());
    severity_cdfs.push_back(result.ViolationSeverityCdf());
    savings.push_back(result.MeanCellSavings());
    std::printf("cell %c: %zu machines, %zu tasks, mean violation rate %.4f, savings %.3f\n",
                letter, static_cast<size_t>(cell.num_machines()), static_cast<size_t>(cell.num_tasks()), result.MeanViolationRate(),
                result.MeanCellSavings());
  }

  std::vector<std::pair<std::string, const Ecdf*>> violation_series;
  std::vector<std::pair<std::string, const Ecdf*>> severity_series;
  for (int i = 0; i < 8; ++i) {
    const std::string name = std::string("cell_") + static_cast<char>('a' + i);
    violation_series.emplace_back(name, &violation_cdfs[i]);
    severity_series.emplace_back(name, &severity_cdfs[i]);
  }
  ReportCdfs(ctx, "Fig 11(a): per-machine violation rate", violation_series,
             "fig11a_violation_rate.csv");
  ReportCdfs(ctx, "Fig 11(b): violation severity", severity_series,
             "fig11b_violation_severity.csv");

  Table table({"cell", "savings: 1 - predicted/limit"});
  for (int i = 0; i < 8; ++i) {
    table.AddRow(std::string("cell_") + static_cast<char>('a' + i), {savings[i]});
  }
  std::printf("\nFig 11(c): cell-level savings\n");
  table.Print();
  return 0;
}

}  // namespace

int main() { return Main(); }
