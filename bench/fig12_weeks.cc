// Figure 12: stability over time — the max predictor on each of the four
// weeks of cell a: (a) violation rate, (b) violation severity, (c) savings.
// The paper's point: week-1 conclusions hold across the month.

#include <cstdio>

#include "bench_common.h"
#include "crf/sim/simulator.h"
#include "crf/trace/trace_builder.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("fig12_weeks", "Fig 12: max predictor across weeks 1-4 of cell a");

  // One month-long trace, analyzed per week. Using a quarter of cell a's
  // machines keeps the month-long run comparable in cost to the week-long
  // benches.
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = ScaledCount(profile.num_machines / 4);
  GeneratorOptions options;
  options.num_intervals = 4 * kIntervalsPerWeek;
  CellTrace month = GenerateCellTrace(profile, options, ctx.rng().Fork('a'));
  month.FilterToServingTasks();
  std::printf("cell a month: %zu machines, %zu serving tasks\n",
              static_cast<size_t>(month.num_machines()),
              static_cast<size_t>(month.num_tasks()));

  std::vector<Ecdf> violation_cdfs;
  std::vector<Ecdf> severity_cdfs;
  std::vector<double> savings;
  for (int week = 0; week < 4; ++week) {
    // Slice the month into week-long traces (tasks clipped to the window).
    CellTraceBuilder builder(month.name + "_week" + std::to_string(week + 1), kIntervalsPerWeek,
                             month.num_machines());
    for (int m = 0; m < month.num_machines(); ++m) {
      builder.set_machine_capacity(m, month.machine_capacity(m));
    }
    const Interval begin = week * kIntervalsPerWeek;
    const Interval end = begin + kIntervalsPerWeek;
    for (int32_t i = 0; i < month.num_tasks(); ++i) {
      const TaskView task = month.task(i);
      const Interval from = std::max(task.start(), begin);
      const Interval to = std::min(task.end(), end);
      if (from >= to) {
        continue;
      }
      const int32_t clipped = builder.AddTask(task.task_id(), task.job_id(),
                                              task.machine_index(), from - begin, task.limit(),
                                              task.sched_class());
      const std::span<const float> usage =
          task.usage().subspan(from - task.start(), to - from);
      builder.ReserveUsage(clipped, usage.size());
      for (const float u : usage) {
        builder.AppendUsage(clipped, u);
      }
    }
    const CellTrace slice = builder.Seal();

    // Week-level mean utilization of allocation, streamed per machine by the
    // series cursor (no per-machine series allocations).
    double usage_sum = 0.0;
    double limit_sum = 0.0;
    MachineSeriesCursor cursor(slice);
    for (int m = 0; m < slice.num_machines(); ++m) {
      cursor.Reset(m);
      while (cursor.Next()) {
        usage_sum += cursor.usage();
        limit_sum += cursor.limit_sum();
      }
    }

    const SimResult result = SimulateCell(slice, SimulationMaxSpec());
    violation_cdfs.push_back(result.ViolationRateCdf());
    severity_cdfs.push_back(result.ViolationSeverityCdf());
    savings.push_back(result.MeanCellSavings());
    std::printf(
        "week %d: %zu tasks, mean violation rate %.4f, savings %.3f, usage/limit %.3f\n",
        week + 1, static_cast<size_t>(slice.num_tasks()), result.MeanViolationRate(),
        result.MeanCellSavings(), limit_sum > 0.0 ? usage_sum / limit_sum : 0.0);
  }

  std::vector<std::pair<std::string, const Ecdf*>> violation_series;
  std::vector<std::pair<std::string, const Ecdf*>> severity_series;
  for (int w = 0; w < 4; ++w) {
    const std::string name = "week " + std::to_string(w + 1);
    violation_series.emplace_back(name, &violation_cdfs[w]);
    severity_series.emplace_back(name, &severity_cdfs[w]);
  }
  ReportCdfs(ctx, "Fig 12(a): per-machine violation rate", violation_series,
             "fig12a_violation_rate.csv");
  ReportCdfs(ctx, "Fig 12(b): violation severity", severity_series,
             "fig12b_violation_severity.csv");

  Table table({"week", "savings: 1 - predicted/limit"});
  for (int w = 0; w < 4; ++w) {
    table.AddRow("week " + std::to_string(w + 1), {savings[w]});
  }
  std::printf("\nFig 12(c): cell-level savings per week\n");
  table.Print();
  return 0;
}

}  // namespace

int main() { return Main(); }
