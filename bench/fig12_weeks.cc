// Figure 12: stability over time — the max predictor on each of the four
// weeks of cell a: (a) violation rate, (b) violation severity, (c) savings.
// The paper's point: week-1 conclusions hold across the month.

#include <cstdio>

#include "bench_common.h"
#include "crf/sim/simulator.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("fig12_weeks", "Fig 12: max predictor across weeks 1-4 of cell a");

  // One month-long trace, analyzed per week. Using a quarter of cell a's
  // machines keeps the month-long run comparable in cost to the week-long
  // benches.
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = ScaledCount(profile.num_machines / 4);
  GeneratorOptions options;
  options.num_intervals = 4 * kIntervalsPerWeek;
  CellTrace month = GenerateCellTrace(profile, options, ctx.rng().Fork('a'));
  month.FilterToServingTasks();
  std::printf("cell a month: %zu machines, %zu serving tasks\n", month.machines.size(),
              month.tasks.size());

  std::vector<Ecdf> violation_cdfs;
  std::vector<Ecdf> severity_cdfs;
  std::vector<double> savings;
  for (int week = 0; week < 4; ++week) {
    // Slice the month into week-long traces (tasks clipped to the window).
    CellTrace slice;
    slice.name = month.name + "_week" + std::to_string(week + 1);
    slice.num_intervals = kIntervalsPerWeek;
    slice.machines.resize(month.machines.size());
    for (size_t m = 0; m < month.machines.size(); ++m) {
      slice.machines[m].capacity = month.machines[m].capacity;
    }
    const Interval begin = week * kIntervalsPerWeek;
    const Interval end = begin + kIntervalsPerWeek;
    for (const TaskTrace& task : month.tasks) {
      const Interval from = std::max(task.start, begin);
      const Interval to = std::min(task.end(), end);
      if (from >= to) {
        continue;
      }
      TaskTrace clipped;
      clipped.task_id = task.task_id;
      clipped.job_id = task.job_id;
      clipped.machine_index = task.machine_index;
      clipped.start = from - begin;
      clipped.limit = task.limit;
      clipped.sched_class = task.sched_class;
      clipped.usage.assign(task.usage.begin() + (from - task.start),
                           task.usage.begin() + (to - task.start));
      slice.machines[task.machine_index].task_indices.push_back(
          static_cast<int32_t>(slice.tasks.size()));
      slice.tasks.push_back(std::move(clipped));
    }

    const SimResult result = SimulateCell(slice, SimulationMaxSpec());
    violation_cdfs.push_back(result.ViolationRateCdf());
    severity_cdfs.push_back(result.ViolationSeverityCdf());
    savings.push_back(result.MeanCellSavings());
    std::printf("week %d: %zu tasks, mean violation rate %.4f, savings %.3f\n", week + 1,
                slice.tasks.size(), result.MeanViolationRate(), result.MeanCellSavings());
  }

  std::vector<std::pair<std::string, const Ecdf*>> violation_series;
  std::vector<std::pair<std::string, const Ecdf*>> severity_series;
  for (int w = 0; w < 4; ++w) {
    const std::string name = "week " + std::to_string(w + 1);
    violation_series.emplace_back(name, &violation_cdfs[w]);
    severity_series.emplace_back(name, &severity_cdfs[w]);
  }
  ReportCdfs(ctx, "Fig 12(a): per-machine violation rate", violation_series,
             "fig12a_violation_rate.csv");
  ReportCdfs(ctx, "Fig 12(b): violation severity", severity_series,
             "fig12b_violation_severity.csv");

  Table table({"week", "savings: 1 - predicted/limit"});
  for (int w = 0; w < 4; ++w) {
    table.AddRow("week " + std::to_string(w + 1), {savings[w]});
  }
  std::printf("\nFig 12(c): cell-level savings per week\n");
  table.Print();
  return 0;
}

}  // namespace

int main() { return Main(); }
