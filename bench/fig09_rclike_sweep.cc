// Figure 9: RC-like parameter sweep on cell a, week 1.
//   (a) per-machine violation-rate CDFs for percentile in {80, 90, 95, 99};
//   (b) cell-level savings vs percentile;
//   (c) violation-rate CDFs for warm-up in {1h, 2h, 3h};
//   (d) violation-rate CDFs for history in {2h, 5h, 10h}.
//
// The whole 10-point grid runs through SimulateCellMulti in a single trace
// pass: every percentile in panel (a) reads the same shared per-task
// order-statistics windows (one insert, four rank queries), and the warm-up
// variants in (c) reuse those windows too — only the distinct history
// lengths in (d) need windows of their own.

#include <cstdio>

#include "bench_common.h"
#include "crf/sim/simulator.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("fig09_rclike_sweep", "Fig 9: RC-like predictor parameter sweep");
  const CellTrace cell = MakeSimCell(ctx, 'a', kIntervalsPerWeek);
  std::printf("cell a: %zu machines, %zu serving tasks, 1 week\n", static_cast<size_t>(cell.num_machines()),
              static_cast<size_t>(cell.num_tasks()));

  // The full grid, one SimulateCellMulti call:
  //   [0..3]  percentile in {80, 90, 95, 99}, 2h warm-up, 10h history  (a)+(b)
  //   [4..6]  warm-up in {1h, 2h, 3h} at p95, 10h history              (c)
  //   [7..9]  history in {2h, 5h, 10h} at p95, 2h warm-up              (d)
  std::vector<PredictorSpec> specs;
  for (const double p : {80.0, 90.0, 95.0, 99.0}) {
    specs.push_back(RcLikeSpec(p));
  }
  for (const int hours : {1, 2, 3}) {
    specs.push_back(RcLikeSpec(95.0, hours * kIntervalsPerHour));
  }
  for (const int hours : {2, 5, 10}) {
    specs.push_back(RcLikeSpec(95.0, 2 * kIntervalsPerHour, hours * kIntervalsPerHour));
  }

  OracleCache oracle_cache;
  SimOptions sim_options;
  sim_options.oracle_cache = &oracle_cache;
  const std::vector<SimResult> results = SimulateCellMulti(cell, specs, sim_options);

  // (a)+(b): violation-rate CDFs and cell-level savings vs percentile.
  {
    const char* labels[] = {"percentile=80", "percentile=90", "percentile=95",
                            "percentile=99"};
    std::vector<Ecdf> cdfs;
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (int i = 0; i < 4; ++i) {
      cdfs.push_back(results[i].ViolationRateCdf());
    }
    for (int i = 0; i < 4; ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 9(a): per-machine violation rate vs percentile", series,
               "fig09a_violation_vs_percentile.csv");

    Table table({"percentile", "savings: 1 - predicted/limit"});
    for (int i = 0; i < 4; ++i) {
      table.AddRow(labels[i], {results[i].MeanCellSavings()});
    }
    std::printf("\nFig 9(b): cell-level savings vs percentile\n");
    table.Print();
  }

  // (c): warm-up sweep at p95, 10h history.
  {
    const char* labels[] = {"warm-up=1h", "warm-up=2h", "warm-up=3h"};
    std::vector<Ecdf> cdfs;
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (int i = 0; i < 3; ++i) {
      cdfs.push_back(results[4 + i].ViolationRateCdf());
    }
    for (int i = 0; i < 3; ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 9(c): violation rate vs warm-up (p95, 10h history)", series,
               "fig09c_violation_vs_warmup.csv");
  }

  // (d): history sweep at p95, 2h warm-up.
  {
    const char* labels[] = {"history=2h", "history=5h", "history=10h"};
    std::vector<Ecdf> cdfs;
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (int i = 0; i < 3; ++i) {
      cdfs.push_back(results[7 + i].ViolationRateCdf());
    }
    for (int i = 0; i < 3; ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 9(d): violation rate vs history (p95, 2h warm-up)", series,
               "fig09d_violation_vs_history.csv");
  }
  return 0;
}

}  // namespace

int main() { return Main(); }
