// Figure 9: RC-like parameter sweep on cell a, week 1.
//   (a) per-machine violation-rate CDFs for percentile in {80, 90, 95, 99};
//   (b) cell-level savings vs percentile;
//   (c) violation-rate CDFs for warm-up in {1h, 2h, 3h};
//   (d) violation-rate CDFs for history in {2h, 5h, 10h}.

#include <cstdio>

#include "bench_common.h"
#include "crf/sim/simulator.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("fig09_rclike_sweep", "Fig 9: RC-like predictor parameter sweep");
  const CellTrace cell = MakeSimCell(ctx, 'a', kIntervalsPerWeek);
  std::printf("cell a: %zu machines, %zu serving tasks, 1 week\n", cell.machines.size(),
              cell.tasks.size());

  // The peak oracle depends only on (cell, machine, horizon) — share one
  // memo across every sweep point so it is computed exactly once.
  OracleCache oracle_cache;
  SimOptions sim_options;
  sim_options.oracle_cache = &oracle_cache;

  // (a)+(b): percentile sweep with 2h warm-up, 10h history.
  {
    std::vector<Ecdf> cdfs;
    std::vector<double> savings;
    std::vector<std::string> labels;
    for (const double p : {80.0, 90.0, 95.0, 99.0}) {
      const SimResult result = SimulateCell(cell, RcLikeSpec(p), sim_options);
      cdfs.push_back(result.ViolationRateCdf());
      savings.push_back(result.MeanCellSavings());
      labels.push_back("percentile=" + std::to_string(static_cast<int>(p)));
    }
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (size_t i = 0; i < cdfs.size(); ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 9(a): per-machine violation rate vs percentile", series,
               "fig09a_violation_vs_percentile.csv");

    Table table({"percentile", "savings: 1 - predicted/limit"});
    for (size_t i = 0; i < savings.size(); ++i) {
      table.AddRow(labels[i], {savings[i]});
    }
    std::printf("\nFig 9(b): cell-level savings vs percentile\n");
    table.Print();
  }

  // (c): warm-up sweep at p95, 10h history.
  {
    std::vector<Ecdf> cdfs;
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (const int hours : {1, 2, 3}) {
      const SimResult result =
          SimulateCell(cell, RcLikeSpec(95.0, hours * kIntervalsPerHour), sim_options);
      cdfs.push_back(result.ViolationRateCdf());
    }
    const char* labels[] = {"warm-up=1h", "warm-up=2h", "warm-up=3h"};
    for (size_t i = 0; i < cdfs.size(); ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 9(c): violation rate vs warm-up (p95, 10h history)", series,
               "fig09c_violation_vs_warmup.csv");
  }

  // (d): history sweep at p95, 2h warm-up.
  {
    std::vector<Ecdf> cdfs;
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (const int hours : {2, 5, 10}) {
      const SimResult result = SimulateCell(
          cell, RcLikeSpec(95.0, 2 * kIntervalsPerHour, hours * kIntervalsPerHour),
          sim_options);
      cdfs.push_back(result.ViolationRateCdf());
    }
    const char* labels[] = {"history=2h", "history=5h", "history=10h"};
    for (size_t i = 0; i < cdfs.size(); ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 9(d): violation rate vs history (p95, 2h warm-up)", series,
               "fig09d_violation_vs_history.csv");
  }
  return 0;
}

}  // namespace

int main() { return Main(); }
