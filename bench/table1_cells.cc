// Table 1: the performance-correlation experiment's cell inventory —
// machines and tasks processed per production cell over a month. Regenerated
// from the production cell profiles (counts are scaled by ~1/125 versus the
// paper; the relative shape — cell 1 largest, cell 4 extreme task churn,
// cell 5 small — is the reproduction target).

#include <cstdio>

#include "bench_common.h"
#include "crf/trace/generator.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("table1_cells", "Table 1: production cell statistics (1 month)");

  Table table({"cell", "machines", "tasks (month)", "tasks/machine", "paper machines (x10^3)",
               "paper tasks (x10^6)"});
  const double paper_machines[] = {40, 11, 10.5, 11, 3.5};
  const double paper_tasks[] = {14.8, 12.8, 9.4, 81.3, 3.7};

  for (int i = 1; i <= 5; ++i) {
    CellProfile profile = ProductionCellProfile(i);
    profile.num_machines = ScaledCount(profile.num_machines);
    GeneratorOptions options;
    // A month of arrivals; usage synthesis dominates cost, so a half-size
    // trace horizon with doubled task accounting would distort Table 1 —
    // generate the full month.
    options.num_intervals = 4 * kIntervalsPerWeek;
    const CellTrace cell = GenerateCellTrace(profile, options, ctx.rng().Fork(i));
    table.AddRow(profile.name,
                 {static_cast<double>(static_cast<size_t>(cell.num_machines())),
                  static_cast<double>(static_cast<size_t>(cell.num_tasks())),
                  static_cast<double>(static_cast<size_t>(cell.num_tasks())) / static_cast<size_t>(cell.num_machines()),
                  paper_machines[i - 1], paper_tasks[i - 1]});
  }
  std::printf("\n");
  table.Print();
  std::printf("\n(The paper's task/machine ratios: cell 4 ~7400/mo dwarfs the others; the\n"
              "generated cells reproduce that ordering at 1/125 machine scale.)\n");
  return 0;
}

}  // namespace

int main() { return Main(); }
