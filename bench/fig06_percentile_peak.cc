// Figure 6: estimating the machine-level peak from task-level percentiles.
//
// For each percentile p, the machine peak is approximated as the sum over
// resident tasks of the task's p-th percentile of its within-interval usage
// distribution; the CDF of (approx - actual)/actual across machine-intervals
// shows how badly the sum of task maxima (p100) overestimates the true
// simultaneous peak, and why the paper feeds the simulator the p90 series
// (greater than the actual peak >95% of the time without gross
// overestimation).

#include <cstdio>

#include "bench_common.h"
#include "crf/trace/trace_stats.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("fig06_percentile_peak",
                           "Fig 6: sum-of-percentile peak estimates vs true machine peak");
  // Rich within-interval stats cost ~9x task memory; use half a week. The
  // machine-level true peak covers *everything* that ran on the machine, so
  // the estimator sum must too: no serving-class filter here (unlike the
  // policy benches).
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = ScaledCount(profile.num_machines);
  GeneratorOptions gen_options;
  gen_options.num_intervals = kIntervalsPerWeek / 2;
  gen_options.rich_stats = true;
  const CellTrace cell = GenerateCellTrace(profile, gen_options, ctx.rng().Fork('a'));
  std::printf("cell a: %zu machines, %zu tasks (all classes), rich within-interval stats\n",
              static_cast<size_t>(cell.num_machines()), static_cast<size_t>(cell.num_tasks()));

  // The whole percentile grid in one trace pass: each rich-stats row is
  // loaded once and queried for every percentile.
  const std::vector<int> percentiles = {50, 60, 70, 80, 90, 95, 100};
  const std::vector<Ecdf> cdfs = PercentileSumPeakErrorCdfs(cell, percentiles, /*stride=*/4);
  std::vector<std::pair<std::string, const Ecdf*>> series;
  for (size_t i = 0; i < percentiles.size(); ++i) {
    const std::string name =
        percentiles[i] == 100 ? "sum(100%ile)" : "sum(" + std::to_string(percentiles[i]) + "%ile)";
    series.emplace_back(name, &cdfs[i]);
  }

  ReportCdfs(ctx, "(approx peak - actual peak) / actual peak", series,
             "fig06_percentile_peak.csv");

  // The paper's calibration: p90 should over-estimate the actual peak for
  // >~95% of machine-intervals while p50 undershoots.
  const size_t i90 = 4;
  std::printf("\nP[sum(90%%ile) >= actual peak] = %.3f (paper targets > 0.95)\n",
              1.0 - cdfs[i90].Evaluate(-1e-9));
  std::printf("P[sum(50%%ile) >= actual peak] = %.3f\n", 1.0 - cdfs[0].Evaluate(-1e-9));
  return 0;
}

}  // namespace

int main() { return Main(); }
