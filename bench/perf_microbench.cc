// Microbenchmarks (google-benchmark) for the hot paths the paper's Section 4
// constraints care about: a predictor must respond "within the polling
// frequency of the central scheduler" with a small CPU and memory footprint.
// Measures per-poll predictor cost, oracle computation throughput, and the
// TaskHistory percentile window.

#include <benchmark/benchmark.h>

#include <vector>

#include "crf/core/oracle.h"
#include "crf/core/predictor_factory.h"
#include "crf/core/task_history.h"
#include "crf/trace/generator.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

std::vector<TaskSample> MakeTasks(int count, Rng& rng) {
  std::vector<TaskSample> tasks;
  tasks.reserve(count);
  for (int i = 0; i < count; ++i) {
    const double limit = 0.02 + rng.UniformDouble() * 0.2;
    tasks.push_back({static_cast<TaskId>(i + 1), limit * rng.UniformDouble(), limit});
  }
  return tasks;
}

void BenchPredictorPoll(benchmark::State& state, const PredictorSpec& spec) {
  Rng rng(1);
  auto predictor = CreatePredictor(spec);
  auto tasks = MakeTasks(static_cast<int>(state.range(0)), rng);
  Interval now = 0;
  for (auto _ : state) {
    // Perturb usage so the history windows churn realistically.
    for (auto& task : tasks) {
      task.usage = task.limit * rng.UniformDouble();
    }
    predictor->Observe(now++, tasks);
    benchmark::DoNotOptimize(predictor->PredictPeak());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BorgDefaultPoll(benchmark::State& state) {
  BenchPredictorPoll(state, BorgDefaultSpec(0.9));
}
void BM_RcLikePoll(benchmark::State& state) { BenchPredictorPoll(state, RcLikeSpec(99.0)); }
void BM_NSigmaPoll(benchmark::State& state) { BenchPredictorPoll(state, NSigmaSpec(5.0)); }
void BM_MaxPoll(benchmark::State& state) { BenchPredictorPoll(state, ProductionMaxSpec()); }

BENCHMARK(BM_BorgDefaultPoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_RcLikePoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_NSigmaPoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_MaxPoll)->Arg(16)->Arg(64)->Arg(256);

void BM_TaskHistoryPush(benchmark::State& state) {
  TaskHistory history(static_cast<int>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    history.Push(static_cast<float>(rng.UniformDouble()));
    benchmark::DoNotOptimize(history.size());
  }
}
BENCHMARK(BM_TaskHistoryPush)->Arg(120)->Arg(1200);

void BM_TaskHistoryPercentile(benchmark::State& state) {
  TaskHistory history(static_cast<int>(state.range(0)));
  Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    history.Push(static_cast<float>(rng.UniformDouble()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.Percentile(99.0));
  }
}
BENCHMARK(BM_TaskHistoryPercentile)->Arg(120)->Arg(1200);

// One-machine oracle computation over a day trace; measures the
// segment-sliding-max algorithm.
void BM_PeakOracle(benchmark::State& state) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 1;
  profile.tasks_per_machine = static_cast<double>(state.range(0));
  profile.target_alloc_ratio = 1e9;  // Let the single machine hold them all.
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerWeek;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePeakOracle(cell, 0, kIntervalsPerDay));
  }
  state.SetItemsProcessed(state.iterations() * cell.num_intervals);
}
BENCHMARK(BM_PeakOracle)->Arg(16)->Arg(64);

void BM_TotalUsageOracle(benchmark::State& state) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 1;
  profile.tasks_per_machine = static_cast<double>(state.range(0));
  profile.target_alloc_ratio = 1e9;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerWeek;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTotalUsageOracle(cell, 0, kIntervalsPerDay));
  }
  state.SetItemsProcessed(state.iterations() * cell.num_intervals);
}
BENCHMARK(BM_TotalUsageOracle)->Arg(16)->Arg(64);

}  // namespace
}  // namespace crf

BENCHMARK_MAIN();
