// Microbenchmarks (google-benchmark) for the hot paths the paper's Section 4
// constraints care about: a predictor must respond "within the polling
// frequency of the central scheduler" with a small CPU and memory footprint.
// Measures per-poll predictor cost, oracle computation throughput, the
// TaskHistory percentile window, and the fused simulation engine
// (machines/sec and intervals/sec, with and without the shared oracle cache
// across a 16-point predictor sweep).
//
// Results are recorded as JSON under $REPRO_OUT (default bench_out/) in
// perf_microbench.json so engine throughput is a regression-checkable
// number; pass --benchmark_out=... to override. The closed-loop cluster
// engine (serial/linear-scan reference vs sharded/indexed) is additionally
// timed into the tracked BENCH_cluster.json (see RecordClusterBench below),
// and the multi-spec sweep engine (per-spec SimulateCell loop vs one
// SimulateCellMulti pass over the Fig 8+9 grid) into the tracked
// BENCH_sweep.json (see RecordSweepBench below).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "crf/cluster/cell_sim.h"
#include "crf/core/oracle.h"
#include "crf/core/predictor_factory.h"
#include "crf/core/task_history.h"
#include "crf/sim/simulator.h"
#include "crf/trace/generator.h"
#include "crf/util/env.h"
#include "crf/util/rng.h"
#include "crf/util/thread_pool.h"

namespace crf {
namespace {

std::vector<TaskSample> MakeTasks(int count, Rng& rng) {
  std::vector<TaskSample> tasks;
  tasks.reserve(count);
  for (int i = 0; i < count; ++i) {
    const double limit = 0.02 + rng.UniformDouble() * 0.2;
    tasks.push_back({static_cast<TaskId>(i + 1), limit * rng.UniformDouble(), limit});
  }
  return tasks;
}

void BenchPredictorPoll(benchmark::State& state, const PredictorSpec& spec) {
  Rng rng(1);
  auto predictor = CreatePredictor(spec);
  auto tasks = MakeTasks(static_cast<int>(state.range(0)), rng);
  Interval now = 0;
  for (auto _ : state) {
    // Perturb usage so the history windows churn realistically.
    for (auto& task : tasks) {
      task.usage = task.limit * rng.UniformDouble();
    }
    predictor->Observe(now++, tasks);
    benchmark::DoNotOptimize(predictor->PredictPeak());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BorgDefaultPoll(benchmark::State& state) {
  BenchPredictorPoll(state, BorgDefaultSpec(0.9));
}
void BM_RcLikePoll(benchmark::State& state) { BenchPredictorPoll(state, RcLikeSpec(99.0)); }
void BM_NSigmaPoll(benchmark::State& state) { BenchPredictorPoll(state, NSigmaSpec(5.0)); }
void BM_MaxPoll(benchmark::State& state) { BenchPredictorPoll(state, ProductionMaxSpec()); }

BENCHMARK(BM_BorgDefaultPoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_RcLikePoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_NSigmaPoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_MaxPoll)->Arg(16)->Arg(64)->Arg(256);

void BM_TaskHistoryPush(benchmark::State& state) {
  TaskHistory history(static_cast<int>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    history.Push(static_cast<float>(rng.UniformDouble()));
    benchmark::DoNotOptimize(history.size());
  }
}
BENCHMARK(BM_TaskHistoryPush)->Arg(120)->Arg(1200);

void BM_TaskHistoryPercentile(benchmark::State& state) {
  TaskHistory history(static_cast<int>(state.range(0)));
  Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    history.Push(static_cast<float>(rng.UniformDouble()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.Percentile(99.0));
  }
}
BENCHMARK(BM_TaskHistoryPercentile)->Arg(120)->Arg(1200);

// One-machine oracle computation over a day trace; measures the
// segment-sliding-max algorithm.
void BM_PeakOracle(benchmark::State& state) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 1;
  profile.tasks_per_machine = static_cast<double>(state.range(0));
  profile.target_alloc_ratio = 1e9;  // Let the single machine hold them all.
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerWeek;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePeakOracle(cell, 0, kIntervalsPerDay));
  }
  state.SetItemsProcessed(state.iterations() * cell.num_intervals);
}
BENCHMARK(BM_PeakOracle)->Arg(16)->Arg(64);

void BM_TotalUsageOracle(benchmark::State& state) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 1;
  profile.tasks_per_machine = static_cast<double>(state.range(0));
  profile.target_alloc_ratio = 1e9;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerWeek;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTotalUsageOracle(cell, 0, kIntervalsPerDay));
  }
  state.SetItemsProcessed(state.iterations() * cell.num_intervals);
}
BENCHMARK(BM_TotalUsageOracle)->Arg(16)->Arg(64);

// The default synthetic simulation cell for engine-throughput benches:
// profile 'a' at a bench-friendly machine count, one week.
const CellTrace& SweepCell() {
  static const CellTrace* cell = [] {
    CellProfile profile = SimCellProfile('a');
    profile.num_machines = 16;
    GeneratorOptions options;
    options.num_intervals = kIntervalsPerWeek;
    auto* trace = new CellTrace(GenerateCellTrace(profile, options, Rng(6)));
    trace->FilterToServingTasks();
    return trace;
  }();
  return *cell;
}

// One machine through the fused engine (no oracle cache): steady-state
// per-machine simulation throughput in intervals/sec.
void BM_SimulateMachineFused(benchmark::State& state) {
  const CellTrace& cell = SweepCell();
  SimOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimulateMachine(cell, 0, NSigmaSpec(5.0), options, nullptr, nullptr));
  }
  state.counters["intervals_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cell.num_intervals),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateMachineFused);

// A 16-point N-sigma parameter sweep over the default synthetic cell —
// the fig08-shaped workload. Arg(0): every sweep point recomputes the
// oracle; Arg(1): one OracleCache shared across all 16 points. The reported
// machines_per_second / intervals_per_second ratio between the two rows is
// the recorded oracle-cache speedup.
void BM_NSigmaSweep16(benchmark::State& state) {
  const CellTrace& cell = SweepCell();
  const bool use_cache = state.range(0) != 0;
  constexpr int kSweepPoints = 16;
  for (auto _ : state) {
    OracleCache cache;
    SimOptions options;
    if (use_cache) {
      options.oracle_cache = &cache;
    }
    for (int point = 0; point < kSweepPoints; ++point) {
      benchmark::DoNotOptimize(SimulateCell(cell, NSigmaSpec(2.0 + 0.5 * point), options));
    }
  }
  const double machine_sims =
      static_cast<double>(state.iterations()) * kSweepPoints * cell.machines.size();
  state.counters["machines_per_second"] =
      benchmark::Counter(machine_sims, benchmark::Counter::kIsRate);
  state.counters["intervals_per_second"] = benchmark::Counter(
      machine_sims * static_cast<double>(cell.num_intervals), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NSigmaSweep16)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// The Fig 8+9-shaped predictor grid: the N-sigma multiplier/warm-up/history
// sweep plus the RC-like percentile/warm-up/history sweep, 20 points total.
// This is the workload the multi-spec sweep engine exists for.
std::vector<PredictorSpec> SweepGridSpecs() {
  std::vector<PredictorSpec> specs;
  for (const double n : {2.0, 3.0, 5.0, 10.0}) {
    specs.push_back(NSigmaSpec(n));
  }
  for (const int hours : {1, 2, 3}) {
    specs.push_back(NSigmaSpec(5.0, hours * kIntervalsPerHour));
  }
  for (const int hours : {2, 5, 10}) {
    specs.push_back(NSigmaSpec(5.0, 2 * kIntervalsPerHour, hours * kIntervalsPerHour));
  }
  for (const double p : {80.0, 90.0, 95.0, 99.0}) {
    specs.push_back(RcLikeSpec(p));
  }
  for (const int hours : {1, 2, 3}) {
    specs.push_back(RcLikeSpec(95.0, hours * kIntervalsPerHour));
  }
  for (const int hours : {2, 5, 10}) {
    specs.push_back(RcLikeSpec(95.0, 2 * kIntervalsPerHour, hours * kIntervalsPerHour));
  }
  return specs;
}

// The whole grid over the default cell. Arg(0): one SimulateCell per spec
// (the per-spec reference, with a shared OracleCache so only predictor work
// differs). Arg(1): one SimulateCellMulti walking each machine once. The
// machines_per_second ratio between the rows is the sweep-engine speedup
// tracked in BENCH_sweep.json.
void BM_SweepGrid(benchmark::State& state) {
  const CellTrace& cell = SweepCell();
  const std::vector<PredictorSpec> specs = SweepGridSpecs();
  const bool multi = state.range(0) != 0;
  for (auto _ : state) {
    OracleCache cache;
    SimOptions options;
    options.oracle_cache = &cache;
    if (multi) {
      benchmark::DoNotOptimize(SimulateCellMulti(cell, specs, options));
    } else {
      for (const PredictorSpec& spec : specs) {
        benchmark::DoNotOptimize(SimulateCell(cell, spec, options));
      }
    }
  }
  const double machine_sims =
      static_cast<double>(state.iterations()) * specs.size() * cell.machines.size();
  state.counters["machines_per_second"] =
      benchmark::Counter(machine_sims, benchmark::Counter::kIsRate);
  state.counters["intervals_per_second"] = benchmark::Counter(
      machine_sims * static_cast<double>(cell.num_intervals), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepGrid)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// The closed-loop cluster engine, both configurations: Arg(0) = the serial
// reference (serial step loop + linear-scan placement), Arg(1) = the
// production path (sharded step loop + indexed placement). Both are
// byte-identical in output; the counter ratio is the engine speedup.
void BM_ClusterSim(benchmark::State& state) {
  const bool sharded = state.range(0) != 0;
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 32;
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 4;
  options.parallel = sharded;
  options.placement = sharded ? PlacementEngine::kIndexed : PlacementEngine::kLinearScan;
  int64_t attempts = 0;
  for (auto _ : state) {
    const ClusterSimResult result = RunClusterSim(profile, options, Rng(7));
    attempts += result.placement_attempts;
    benchmark::DoNotOptimize(result.tasks_placed);
  }
  const double machine_steps = static_cast<double>(state.iterations()) *
                               profile.num_machines * options.num_intervals;
  state.counters["machine_steps_per_second"] =
      benchmark::Counter(machine_steps, benchmark::Counter::kIsRate);
  state.counters["placements_per_second"] =
      benchmark::Counter(static_cast<double>(attempts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterSim)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->UseRealTime();

// Steady-state placement cost in isolation: one Publish + one Place per
// iteration against a warm scheduler. Arg(0) = machine count, Arg(1) = 0 for
// the linear scan, 1 for the tournament tree (O(M) vs O(log M)).
void BM_SchedulerPlace(benchmark::State& state) {
  const int num_machines = static_cast<int>(state.range(0));
  const PlacementEngine engine =
      state.range(1) != 0 ? PlacementEngine::kIndexed : PlacementEngine::kLinearScan;
  Scheduler scheduler(PackingPolicy::kBestFit, Rng(8), engine);
  Rng rng(9);
  std::vector<double> free(num_machines);
  for (double& f : free) {
    f = 0.3 + 0.7 * rng.UniformDouble();
  }
  scheduler.UpdateFreeCapacity(free);
  int machine = 0;
  for (auto _ : state) {
    scheduler.Publish(machine, 0.3 + 0.7 * rng.UniformDouble());
    machine = (machine + 1) % num_machines;
    benchmark::DoNotOptimize(scheduler.Place(0.05 + 0.1 * rng.UniformDouble(), {}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerPlace)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1});

// ---------------------------------------------------------------------------
// BENCH_cluster.json: tracked cluster-engine throughput record.
//
// Controlled by $CRF_CLUSTER_BENCH: "off" skips, "short" (default) times one
// day over a small cell, "full" times a week over a production-sized cell.
// The record lands in $CRF_BENCH_CLUSTER_FILE (default ./BENCH_cluster.json)
// as {"schema":"crf-cluster-bench-v1","entries":[...]}; reruns append, so
// the tracked file accumulates a regression history.

struct ClusterBenchTiming {
  double machine_steps_per_sec = 0.0;
  double placements_per_sec = 0.0;
  int64_t placement_attempts = 0;
  int64_t tasks_placed = 0;
};

ClusterBenchTiming TimeClusterSim(const CellProfile& profile,
                                  const ClusterSimOptions& options) {
  // One warm-up run (page in the code and the allocator), then one timed run.
  RunClusterSim(profile, options, Rng(10));
  const auto start = std::chrono::steady_clock::now();
  const ClusterSimResult result = RunClusterSim(profile, options, Rng(10));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  ClusterBenchTiming timing;
  timing.machine_steps_per_sec =
      static_cast<double>(profile.num_machines) * options.num_intervals / seconds;
  timing.placements_per_sec = static_cast<double>(result.placement_attempts) / seconds;
  timing.placement_attempts = result.placement_attempts;
  timing.tasks_placed = result.tasks_placed;
  return timing;
}

std::string TodayUtc() {
  const std::time_t now = std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buffer[16];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%d", &tm_utc);
  return buffer;
}

// Appends one entry to a tracked {"schema":..., "entries":[...]} JSON file,
// keeping prior history; a missing or foreign-schema file is rewritten from
// scratch.
void AppendTrackedBenchEntry(const std::string& path, const std::string& schema,
                             const std::string& entry) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }
  std::string output;
  const size_t close = existing.rfind(']');
  if (close != std::string::npos &&
      existing.find("\"" + schema + "\"") != std::string::npos) {
    // Append to the existing entries array, keeping prior history.
    const bool has_entries = existing.find('{', existing.find("\"entries\"")) < close;
    output = existing.substr(0, close);
    while (!output.empty() && (output.back() == ' ' || output.back() == '\n')) {
      output.pop_back();
    }
    output += has_entries ? ",\n" : "\n";
    output += entry;
    output += "\n  ";
    output += existing.substr(close);
  } else {
    output = "{\n  \"schema\": \"" + schema + "\",\n  \"entries\": [\n" + entry + "\n  ]\n}\n";
  }
  std::ofstream out(path, std::ios::trunc);
  out << output;
}

void RecordClusterBench() {
  const std::string mode = GetEnvString("CRF_CLUSTER_BENCH", "short");
  if (mode == "off") {
    return;
  }
  const bool full = mode == "full";

  // Placement work grows O(M^2) per interval under the linear scan (O(M)
  // tasks, O(M) scan each) while machine stepping grows O(M), so the engine
  // speedup needs a cell large enough for placement to matter.
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = full ? 512 : 192;
  ClusterSimOptions options;
  options.num_intervals = full ? 2 * kIntervalsPerDay : kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 4;

  options.parallel = false;
  options.placement = PlacementEngine::kLinearScan;
  const ClusterBenchTiming serial = TimeClusterSim(profile, options);
  options.parallel = true;
  options.placement = PlacementEngine::kIndexed;
  const ClusterBenchTiming sharded = TimeClusterSim(profile, options);

  // Integrity gate: the engines claim byte-identical results, so a tracked
  // speedup with diverging outputs would be meaningless.
  if (serial.tasks_placed != sharded.tasks_placed ||
      serial.placement_attempts != sharded.placement_attempts) {
    std::fprintf(stderr,
                 "cluster bench: engines diverged (placed %lld vs %lld), not recording\n",
                 static_cast<long long>(serial.tasks_placed),
                 static_cast<long long>(sharded.tasks_placed));
    return;
  }

  const double speedup = sharded.machine_steps_per_sec / serial.machine_steps_per_sec;
  std::ostringstream entry;
  entry.precision(6);
  entry << "    {\n"
        << "      \"date\": \"" << TodayUtc() << "\",\n"
        << "      \"mode\": \"" << (full ? "full" : "short") << "\",\n"
        << "      \"threads\": " << ThreadPool::Default().num_threads() << ",\n"
        << "      \"num_machines\": " << profile.num_machines << ",\n"
        << "      \"num_intervals\": " << options.num_intervals << ",\n"
        << "      \"serial_machine_steps_per_sec\": " << serial.machine_steps_per_sec << ",\n"
        << "      \"serial_placements_per_sec\": " << serial.placements_per_sec << ",\n"
        << "      \"sharded_machine_steps_per_sec\": " << sharded.machine_steps_per_sec
        << ",\n"
        << "      \"sharded_placements_per_sec\": " << sharded.placements_per_sec << ",\n"
        << "      \"speedup\": " << speedup << ",\n"
        << "      \"placement_attempts\": " << serial.placement_attempts << ",\n"
        << "      \"tasks_placed\": " << serial.tasks_placed << "\n"
        << "    }";

  const std::string path = GetEnvString("CRF_BENCH_CLUSTER_FILE", "BENCH_cluster.json");
  AppendTrackedBenchEntry(path, "crf-cluster-bench-v1", entry.str());
  std::printf("cluster bench (%s): serial %.0f sharded %.0f machine-steps/s (%.2fx) -> %s\n",
              full ? "full" : "short", serial.machine_steps_per_sec,
              sharded.machine_steps_per_sec, speedup, path.c_str());
}

// ---------------------------------------------------------------------------
// BENCH_sweep.json: tracked sweep-engine throughput record.
//
// Controlled by $CRF_SWEEP_BENCH: "off" skips, "short" (default) runs the
// 20-point Fig 8+9 grid over a small cell-half-week, "full" over a larger
// cell-week. Times the per-spec SimulateCell loop against one
// SimulateCellMulti call — both behind one shared OracleCache, so the ratio
// isolates the engine, not oracle recomputation. The record lands in
// $CRF_BENCH_SWEEP_FILE (default ./BENCH_sweep.json) as
// {"schema":"crf-sweep-bench-v1","entries":[...]}; reruns append.

void RecordSweepBench() {
  const std::string mode = GetEnvString("CRF_SWEEP_BENCH", "short");
  if (mode == "off") {
    return;
  }
  const bool full = mode == "full";

  CellProfile profile = SimCellProfile('a');
  profile.num_machines = full ? 48 : 16;
  GeneratorOptions gen_options;
  gen_options.num_intervals = full ? kIntervalsPerWeek : kIntervalsPerWeek / 2;
  CellTrace cell = GenerateCellTrace(profile, gen_options, Rng(11));
  cell.FilterToServingTasks();
  const std::vector<PredictorSpec> specs = SweepGridSpecs();

  OracleCache cache;
  SimOptions options;
  options.oracle_cache = &cache;

  // Warm-up pass: pages in the code and fills the oracle cache, so both
  // timed passes run against a warm memo and differ only in engine work.
  SimulateCellMulti(cell, specs, options);

  const auto per_spec_start = std::chrono::steady_clock::now();
  std::vector<SimResult> per_spec;
  per_spec.reserve(specs.size());
  for (const PredictorSpec& spec : specs) {
    per_spec.push_back(SimulateCell(cell, spec, options));
  }
  const double per_spec_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - per_spec_start)
          .count();

  const auto multi_start = std::chrono::steady_clock::now();
  const std::vector<SimResult> multi = SimulateCellMulti(cell, specs, options);
  const double multi_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - multi_start).count();

  // Integrity gate: the engines claim matching metrics, so a tracked speedup
  // with diverging results would be meaningless.
  int64_t total_violations = 0;
  for (size_t s = 0; s < specs.size(); ++s) {
    for (size_t m = 0; m < per_spec[s].machines.size(); ++m) {
      if (per_spec[s].machines[m].violations != multi[s].machines[m].violations) {
        std::fprintf(stderr,
                     "sweep bench: engines diverged (spec %zu machine %zu), not recording\n",
                     s, m);
        return;
      }
      total_violations += per_spec[s].machines[m].violations;
    }
    const double savings_delta =
        std::abs(per_spec[s].MeanCellSavings() - multi[s].MeanCellSavings());
    if (savings_delta > 1e-9) {
      std::fprintf(stderr, "sweep bench: savings diverged (spec %zu), not recording\n", s);
      return;
    }
  }

  const double machine_sims = static_cast<double>(specs.size()) * cell.machines.size();
  const double speedup = per_spec_seconds / multi_seconds;
  std::ostringstream entry;
  entry.precision(6);
  entry << "    {\n"
        << "      \"date\": \"" << TodayUtc() << "\",\n"
        << "      \"mode\": \"" << (full ? "full" : "short") << "\",\n"
        << "      \"threads\": " << ThreadPool::Default().num_threads() << ",\n"
        << "      \"num_machines\": " << profile.num_machines << ",\n"
        << "      \"num_intervals\": " << gen_options.num_intervals << ",\n"
        << "      \"num_specs\": " << specs.size() << ",\n"
        << "      \"per_spec_machines_per_sec\": " << machine_sims / per_spec_seconds << ",\n"
        << "      \"multi_machines_per_sec\": " << machine_sims / multi_seconds << ",\n"
        << "      \"speedup\": " << speedup << ",\n"
        << "      \"total_violations\": " << total_violations << "\n"
        << "    }";

  const std::string path = GetEnvString("CRF_BENCH_SWEEP_FILE", "BENCH_sweep.json");
  AppendTrackedBenchEntry(path, "crf-sweep-bench-v1", entry.str());
  std::printf("sweep bench (%s): per-spec %.3fs multi %.3fs over %zu specs (%.2fx) -> %s\n",
              full ? "full" : "short", per_spec_seconds, multi_seconds, specs.size(), speedup,
              path.c_str());
}

}  // namespace
}  // namespace crf

// BENCHMARK_MAIN, plus JSON recording under $REPRO_OUT unless the caller
// already chose an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).starts_with("--benchmark_out")) {
      has_out = true;
    }
  }
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    const std::string out_dir = crf::BenchOutputDir();
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    out_flag = "--benchmark_out=" + out_dir + "/perf_microbench.json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  crf::RecordClusterBench();
  crf::RecordSweepBench();
  return 0;
}
