// Microbenchmarks (google-benchmark) for the hot paths the paper's Section 4
// constraints care about: a predictor must respond "within the polling
// frequency of the central scheduler" with a small CPU and memory footprint.
// Measures per-poll predictor cost, oracle computation throughput, the
// TaskHistory percentile window, and the fused simulation engine
// (machines/sec and intervals/sec, with and without the shared oracle cache
// across a 16-point predictor sweep).
//
// Results are recorded as JSON under $REPRO_OUT (default bench_out/) in
// perf_microbench.json so engine throughput is a regression-checkable
// number; pass --benchmark_out=... to override.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <vector>

#include "crf/core/oracle.h"
#include "crf/core/predictor_factory.h"
#include "crf/core/task_history.h"
#include "crf/sim/simulator.h"
#include "crf/trace/generator.h"
#include "crf/util/env.h"
#include "crf/util/rng.h"

namespace crf {
namespace {

std::vector<TaskSample> MakeTasks(int count, Rng& rng) {
  std::vector<TaskSample> tasks;
  tasks.reserve(count);
  for (int i = 0; i < count; ++i) {
    const double limit = 0.02 + rng.UniformDouble() * 0.2;
    tasks.push_back({static_cast<TaskId>(i + 1), limit * rng.UniformDouble(), limit});
  }
  return tasks;
}

void BenchPredictorPoll(benchmark::State& state, const PredictorSpec& spec) {
  Rng rng(1);
  auto predictor = CreatePredictor(spec);
  auto tasks = MakeTasks(static_cast<int>(state.range(0)), rng);
  Interval now = 0;
  for (auto _ : state) {
    // Perturb usage so the history windows churn realistically.
    for (auto& task : tasks) {
      task.usage = task.limit * rng.UniformDouble();
    }
    predictor->Observe(now++, tasks);
    benchmark::DoNotOptimize(predictor->PredictPeak());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BorgDefaultPoll(benchmark::State& state) {
  BenchPredictorPoll(state, BorgDefaultSpec(0.9));
}
void BM_RcLikePoll(benchmark::State& state) { BenchPredictorPoll(state, RcLikeSpec(99.0)); }
void BM_NSigmaPoll(benchmark::State& state) { BenchPredictorPoll(state, NSigmaSpec(5.0)); }
void BM_MaxPoll(benchmark::State& state) { BenchPredictorPoll(state, ProductionMaxSpec()); }

BENCHMARK(BM_BorgDefaultPoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_RcLikePoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_NSigmaPoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_MaxPoll)->Arg(16)->Arg(64)->Arg(256);

void BM_TaskHistoryPush(benchmark::State& state) {
  TaskHistory history(static_cast<int>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    history.Push(static_cast<float>(rng.UniformDouble()));
    benchmark::DoNotOptimize(history.size());
  }
}
BENCHMARK(BM_TaskHistoryPush)->Arg(120)->Arg(1200);

void BM_TaskHistoryPercentile(benchmark::State& state) {
  TaskHistory history(static_cast<int>(state.range(0)));
  Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    history.Push(static_cast<float>(rng.UniformDouble()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.Percentile(99.0));
  }
}
BENCHMARK(BM_TaskHistoryPercentile)->Arg(120)->Arg(1200);

// One-machine oracle computation over a day trace; measures the
// segment-sliding-max algorithm.
void BM_PeakOracle(benchmark::State& state) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 1;
  profile.tasks_per_machine = static_cast<double>(state.range(0));
  profile.target_alloc_ratio = 1e9;  // Let the single machine hold them all.
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerWeek;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePeakOracle(cell, 0, kIntervalsPerDay));
  }
  state.SetItemsProcessed(state.iterations() * cell.num_intervals);
}
BENCHMARK(BM_PeakOracle)->Arg(16)->Arg(64);

void BM_TotalUsageOracle(benchmark::State& state) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 1;
  profile.tasks_per_machine = static_cast<double>(state.range(0));
  profile.target_alloc_ratio = 1e9;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerWeek;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTotalUsageOracle(cell, 0, kIntervalsPerDay));
  }
  state.SetItemsProcessed(state.iterations() * cell.num_intervals);
}
BENCHMARK(BM_TotalUsageOracle)->Arg(16)->Arg(64);

// The default synthetic simulation cell for engine-throughput benches:
// profile 'a' at a bench-friendly machine count, one week.
const CellTrace& SweepCell() {
  static const CellTrace* cell = [] {
    CellProfile profile = SimCellProfile('a');
    profile.num_machines = 16;
    GeneratorOptions options;
    options.num_intervals = kIntervalsPerWeek;
    auto* trace = new CellTrace(GenerateCellTrace(profile, options, Rng(6)));
    trace->FilterToServingTasks();
    return trace;
  }();
  return *cell;
}

// One machine through the fused engine (no oracle cache): steady-state
// per-machine simulation throughput in intervals/sec.
void BM_SimulateMachineFused(benchmark::State& state) {
  const CellTrace& cell = SweepCell();
  SimOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimulateMachine(cell, 0, NSigmaSpec(5.0), options, nullptr, nullptr));
  }
  state.counters["intervals_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cell.num_intervals),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateMachineFused);

// A 16-point N-sigma parameter sweep over the default synthetic cell —
// the fig08-shaped workload. Arg(0): every sweep point recomputes the
// oracle; Arg(1): one OracleCache shared across all 16 points. The reported
// machines_per_second / intervals_per_second ratio between the two rows is
// the recorded oracle-cache speedup.
void BM_NSigmaSweep16(benchmark::State& state) {
  const CellTrace& cell = SweepCell();
  const bool use_cache = state.range(0) != 0;
  constexpr int kSweepPoints = 16;
  for (auto _ : state) {
    OracleCache cache;
    SimOptions options;
    if (use_cache) {
      options.oracle_cache = &cache;
    }
    for (int point = 0; point < kSweepPoints; ++point) {
      benchmark::DoNotOptimize(SimulateCell(cell, NSigmaSpec(2.0 + 0.5 * point), options));
    }
  }
  const double machine_sims =
      static_cast<double>(state.iterations()) * kSweepPoints * cell.machines.size();
  state.counters["machines_per_second"] =
      benchmark::Counter(machine_sims, benchmark::Counter::kIsRate);
  state.counters["intervals_per_second"] = benchmark::Counter(
      machine_sims * static_cast<double>(cell.num_intervals), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NSigmaSweep16)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace crf

// BENCHMARK_MAIN, plus JSON recording under $REPRO_OUT unless the caller
// already chose an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).starts_with("--benchmark_out")) {
      has_out = true;
    }
  }
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    const std::string out_dir = crf::BenchOutputDir();
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    out_flag = "--benchmark_out=" + out_dir + "/perf_microbench.json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
