// Microbenchmarks (google-benchmark) for the hot paths the paper's Section 4
// constraints care about: a predictor must respond "within the polling
// frequency of the central scheduler" with a small CPU and memory footprint.
// Measures per-poll predictor cost, oracle computation throughput, the
// TaskHistory percentile window, and the fused simulation engine
// (machines/sec and intervals/sec, with and without the shared oracle cache
// across a 16-point predictor sweep).
//
// Results are recorded as JSON under $REPRO_OUT (default bench_out/) in
// perf_microbench.json so engine throughput is a regression-checkable
// number; pass --benchmark_out=... to override. The closed-loop cluster
// engine (serial/linear-scan reference vs sharded/indexed) is additionally
// timed into the tracked BENCH_cluster.json (see RecordClusterBench below),
// and the multi-spec sweep engine (per-spec SimulateCell loop vs one
// SimulateCellMulti pass over the Fig 8+9 grid) into the tracked
// BENCH_sweep.json (see RecordSweepBench below).

#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "crf/cluster/ab_experiment.h"
#include "crf/cluster/cell_sim.h"
#include "crf/net/loadgen.h"
#include "crf/net/server.h"
#include "crf/core/oracle.h"
#include "crf/core/predictor_factory.h"
#include "crf/core/task_history.h"
#include "crf/serve/replay.h"
#include "crf/sim/simulator.h"
#include "crf/trace/generator.h"
#include "crf/trace/trace_io.h"
#include "crf/util/env.h"
#include "crf/util/rng.h"
#include "crf/util/rss.h"
#include "crf/util/thread_pool.h"

namespace crf {
namespace {

std::vector<TaskSample> MakeTasks(int count, Rng& rng) {
  std::vector<TaskSample> tasks;
  tasks.reserve(count);
  for (int i = 0; i < count; ++i) {
    const double limit = 0.02 + rng.UniformDouble() * 0.2;
    tasks.push_back({static_cast<TaskId>(i + 1), limit * rng.UniformDouble(), limit});
  }
  return tasks;
}

void BenchPredictorPoll(benchmark::State& state, const PredictorSpec& spec) {
  Rng rng(1);
  auto predictor = CreatePredictor(spec);
  auto tasks = MakeTasks(static_cast<int>(state.range(0)), rng);
  Interval now = 0;
  for (auto _ : state) {
    // Perturb usage so the history windows churn realistically.
    for (auto& task : tasks) {
      task.usage = task.limit * rng.UniformDouble();
    }
    predictor->Observe(now++, tasks);
    benchmark::DoNotOptimize(predictor->PredictPeak());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_BorgDefaultPoll(benchmark::State& state) {
  BenchPredictorPoll(state, BorgDefaultSpec(0.9));
}
void BM_RcLikePoll(benchmark::State& state) { BenchPredictorPoll(state, RcLikeSpec(99.0)); }
void BM_NSigmaPoll(benchmark::State& state) { BenchPredictorPoll(state, NSigmaSpec(5.0)); }
void BM_MaxPoll(benchmark::State& state) { BenchPredictorPoll(state, ProductionMaxSpec()); }

BENCHMARK(BM_BorgDefaultPoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_RcLikePoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_NSigmaPoll)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_MaxPoll)->Arg(16)->Arg(64)->Arg(256);

void BM_TaskHistoryPush(benchmark::State& state) {
  TaskHistory history(static_cast<int>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    history.Push(static_cast<float>(rng.UniformDouble()));
    benchmark::DoNotOptimize(history.size());
  }
}
BENCHMARK(BM_TaskHistoryPush)->Arg(120)->Arg(1200);

void BM_TaskHistoryPercentile(benchmark::State& state) {
  TaskHistory history(static_cast<int>(state.range(0)));
  Rng rng(3);
  for (int i = 0; i < state.range(0); ++i) {
    history.Push(static_cast<float>(rng.UniformDouble()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(history.Percentile(99.0));
  }
}
BENCHMARK(BM_TaskHistoryPercentile)->Arg(120)->Arg(1200);

// One-machine oracle computation over a day trace; measures the
// segment-sliding-max algorithm.
void BM_PeakOracle(benchmark::State& state) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 1;
  profile.tasks_per_machine = static_cast<double>(state.range(0));
  profile.target_alloc_ratio = 1e9;  // Let the single machine hold them all.
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerWeek;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputePeakOracle(cell, 0, kIntervalsPerDay));
  }
  state.SetItemsProcessed(state.iterations() * cell.num_intervals);
}
BENCHMARK(BM_PeakOracle)->Arg(16)->Arg(64);

void BM_TotalUsageOracle(benchmark::State& state) {
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 1;
  profile.tasks_per_machine = static_cast<double>(state.range(0));
  profile.target_alloc_ratio = 1e9;
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerWeek;
  const CellTrace cell = GenerateCellTrace(profile, options, Rng(5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeTotalUsageOracle(cell, 0, kIntervalsPerDay));
  }
  state.SetItemsProcessed(state.iterations() * cell.num_intervals);
}
BENCHMARK(BM_TotalUsageOracle)->Arg(16)->Arg(64);

// The default synthetic simulation cell for engine-throughput benches:
// profile 'a' at a bench-friendly machine count, one week.
const CellTrace& SweepCell() {
  static const CellTrace* cell = [] {
    CellProfile profile = SimCellProfile('a');
    profile.num_machines = 16;
    GeneratorOptions options;
    options.num_intervals = kIntervalsPerWeek;
    auto* trace = new CellTrace(GenerateCellTrace(profile, options, Rng(6)));
    trace->FilterToServingTasks();
    return trace;
  }();
  return *cell;
}

// One machine through the fused engine (no oracle cache): steady-state
// per-machine simulation throughput in intervals/sec.
void BM_SimulateMachineFused(benchmark::State& state) {
  const CellTrace& cell = SweepCell();
  SimOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SimulateMachine(cell, 0, NSigmaSpec(5.0), options, nullptr, nullptr));
  }
  state.counters["intervals_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cell.num_intervals),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateMachineFused);

// The streaming serve layer ingesting the full event stream of the default
// synthetic cell (arrivals, departures, one usage sample per resident task
// per interval). Arg(0): serial; Arg(1): sharded ingestion on the thread
// pool. events_per_second is the tracked serve-layer throughput number.
void BM_StreamIngest(benchmark::State& state) {
  const CellTrace& cell = SweepCell();
  ReplayOptions options;
  options.parallel = state.range(0) == 1;
  options.latency_sample_period = 0;  // Measure pure ingest, not the timers.
  uint64_t events = 0;
  for (auto _ : state) {
    StreamReplayer replayer(cell, ProductionMaxSpec(), options);
    replayer.AdvanceToEnd();
    events = replayer.Metrics().TotalEvents();
    benchmark::DoNotOptimize(events);
  }
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations() * events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StreamIngest)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->UseRealTime();

// A 16-point N-sigma parameter sweep over the default synthetic cell —
// the fig08-shaped workload. Arg(0): every sweep point recomputes the
// oracle; Arg(1): one OracleCache shared across all 16 points. The reported
// machines_per_second / intervals_per_second ratio between the two rows is
// the recorded oracle-cache speedup.
void BM_NSigmaSweep16(benchmark::State& state) {
  const CellTrace& cell = SweepCell();
  const bool use_cache = state.range(0) != 0;
  constexpr int kSweepPoints = 16;
  for (auto _ : state) {
    OracleCache cache;
    SimOptions options;
    if (use_cache) {
      options.oracle_cache = &cache;
    }
    for (int point = 0; point < kSweepPoints; ++point) {
      benchmark::DoNotOptimize(SimulateCell(cell, NSigmaSpec(2.0 + 0.5 * point), options));
    }
  }
  const double machine_sims = static_cast<double>(state.iterations()) * kSweepPoints *
                              static_cast<double>(cell.num_machines());
  state.counters["machines_per_second"] =
      benchmark::Counter(machine_sims, benchmark::Counter::kIsRate);
  state.counters["intervals_per_second"] = benchmark::Counter(
      machine_sims * static_cast<double>(cell.num_intervals), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NSigmaSweep16)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// The Fig 8+9-shaped predictor grid: the N-sigma multiplier/warm-up/history
// sweep plus the RC-like percentile/warm-up/history sweep, plus the
// chance-constrained target sweep and the Flex percentile/margin sweep (the
// same axes a Fig 8/9-style plot would walk for the new families), 27 points
// total. This is the workload the multi-spec sweep engine exists for.
std::vector<PredictorSpec> SweepGridSpecs() {
  std::vector<PredictorSpec> specs;
  for (const double n : {2.0, 3.0, 5.0, 10.0}) {
    specs.push_back(NSigmaSpec(n));
  }
  for (const int hours : {1, 2, 3}) {
    specs.push_back(NSigmaSpec(5.0, hours * kIntervalsPerHour));
  }
  for (const int hours : {2, 5, 10}) {
    specs.push_back(NSigmaSpec(5.0, 2 * kIntervalsPerHour, hours * kIntervalsPerHour));
  }
  for (const double p : {80.0, 90.0, 95.0, 99.0}) {
    specs.push_back(RcLikeSpec(p));
  }
  for (const int hours : {1, 2, 3}) {
    specs.push_back(RcLikeSpec(95.0, hours * kIntervalsPerHour));
  }
  for (const int hours : {2, 5, 10}) {
    specs.push_back(RcLikeSpec(95.0, 2 * kIntervalsPerHour, hours * kIntervalsPerHour));
  }
  for (const double target : {0.005, 0.01, 0.05, 0.10}) {
    specs.push_back(ChanceSpec(target));
  }
  for (const double p : {90.0, 95.0, 99.0}) {
    specs.push_back(FlexSpec(p));
  }
  return specs;
}

// The whole grid over the default cell. Arg(0): one SimulateCell per spec
// (the per-spec reference, with a shared OracleCache so only predictor work
// differs). Arg(1): one SimulateCellMulti walking each machine once. The
// machines_per_second ratio between the rows is the sweep-engine speedup
// tracked in BENCH_sweep.json.
void BM_SweepGrid(benchmark::State& state) {
  const CellTrace& cell = SweepCell();
  const std::vector<PredictorSpec> specs = SweepGridSpecs();
  const bool multi = state.range(0) != 0;
  for (auto _ : state) {
    OracleCache cache;
    SimOptions options;
    options.oracle_cache = &cache;
    if (multi) {
      benchmark::DoNotOptimize(SimulateCellMulti(cell, specs, options));
    } else {
      for (const PredictorSpec& spec : specs) {
        benchmark::DoNotOptimize(SimulateCell(cell, spec, options));
      }
    }
  }
  const double machine_sims = static_cast<double>(state.iterations()) * specs.size() *
                              static_cast<double>(cell.num_machines());
  state.counters["machines_per_second"] =
      benchmark::Counter(machine_sims, benchmark::Counter::kIsRate);
  state.counters["intervals_per_second"] = benchmark::Counter(
      machine_sims * static_cast<double>(cell.num_intervals), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepGrid)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// The closed-loop cluster engine, both configurations: Arg(0) = the serial
// reference (serial step loop + linear-scan placement), Arg(1) = the
// production path (sharded step loop + indexed placement). Both are
// byte-identical in output; the counter ratio is the engine speedup.
void BM_ClusterSim(benchmark::State& state) {
  const bool sharded = state.range(0) != 0;
  CellProfile profile = SimCellProfile('a');
  profile.num_machines = 32;
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 4;
  options.parallel = sharded;
  options.placement = sharded ? PlacementEngine::kIndexed : PlacementEngine::kLinearScan;
  int64_t attempts = 0;
  for (auto _ : state) {
    const ClusterSimResult result = RunClusterSim(profile, options, Rng(7));
    attempts += result.placement_attempts;
    benchmark::DoNotOptimize(result.tasks_placed);
  }
  const double machine_steps = static_cast<double>(state.iterations()) *
                               profile.num_machines * options.num_intervals;
  state.counters["machine_steps_per_second"] =
      benchmark::Counter(machine_steps, benchmark::Counter::kIsRate);
  state.counters["placements_per_second"] =
      benchmark::Counter(static_cast<double>(attempts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterSim)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->UseRealTime();

// Steady-state placement cost in isolation: one Publish + one Place per
// iteration against a warm scheduler. Arg(0) = machine count, Arg(1) = 0 for
// the linear scan, 1 for the tournament tree (O(M) vs O(log M)).
void BM_SchedulerPlace(benchmark::State& state) {
  const int num_machines = static_cast<int>(state.range(0));
  const PlacementEngine engine =
      state.range(1) != 0 ? PlacementEngine::kIndexed : PlacementEngine::kLinearScan;
  Scheduler scheduler(PackingPolicy::kBestFit, Rng(8), engine);
  Rng rng(9);
  std::vector<double> free(num_machines);
  for (double& f : free) {
    f = 0.3 + 0.7 * rng.UniformDouble();
  }
  scheduler.UpdateFreeCapacity(free);
  int machine = 0;
  for (auto _ : state) {
    scheduler.Publish(machine, 0.3 + 0.7 * rng.UniformDouble());
    machine = (machine + 1) % num_machines;
    benchmark::DoNotOptimize(scheduler.Place(0.05 + 0.1 * rng.UniformDouble(), {}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerPlace)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 0})
    ->Args({8192, 1});

// ---------------------------------------------------------------------------
// Trace layout: columnar arena vs the pre-refactor per-task-vector layout.
//
// AosTrace reconstructs the old array-of-structs representation (one heap
// vector of usage per task, one heap vector of task indices per machine) so
// the machine-scan throughput of the two layouts can be compared on identical
// data. The arena side streams through MachineSeriesCursor; the AoS side is
// the old per-call MachineUsageSeries (allocate an interval-length vector,
// walk every resident task's own heap buffer).

struct AosTask {
  Interval start = 0;
  double limit = 0.0;
  std::vector<float> usage;
};

struct AosTrace {
  Interval num_intervals = 0;
  std::vector<AosTask> tasks;
  std::vector<std::vector<int32_t>> machine_tasks;

  explicit AosTrace(const CellTrace& cell) : num_intervals(cell.num_intervals) {
    tasks.resize(static_cast<size_t>(cell.num_tasks()));
    for (int32_t i = 0; i < cell.num_tasks(); ++i) {
      const TaskView task = cell.task(i);
      tasks[i].start = task.start();
      tasks[i].limit = task.limit();
    }
    // Replay the pre-refactor growth pattern: one usage sample appended per
    // resident task per interval, so every task's vector grows interleaved
    // with every other's. This reproduces the fragmented heap the old
    // generator and cluster sim actually left behind, rather than the
    // artificially compact layout a bulk copy would produce.
    std::vector<int32_t> by_start(static_cast<size_t>(cell.num_tasks()));
    std::iota(by_start.begin(), by_start.end(), 0);
    const std::span<const Interval> starts = cell.task_starts();
    std::sort(by_start.begin(), by_start.end(),
              [starts](int32_t a, int32_t b) { return starts[a] < starts[b]; });
    std::vector<int32_t> active;
    size_t next = 0;
    for (Interval t = 0; t < num_intervals; ++t) {
      while (next < by_start.size() && starts[by_start[next]] <= t) {
        active.push_back(by_start[next++]);
      }
      for (size_t a = 0; a < active.size();) {
        const int32_t i = active[a];
        const std::span<const float> usage = cell.task(i).usage();
        const size_t k = tasks[i].usage.size();
        if (k < usage.size()) {
          tasks[i].usage.push_back(usage[k]);
          ++a;
        } else {
          active[a] = active.back();
          active.pop_back();
        }
      }
    }
    for (int32_t i = 0; i < cell.num_tasks(); ++i) {  // Samples past the trace end.
      const std::span<const float> usage = cell.task(i).usage();
      for (size_t k = tasks[i].usage.size(); k < usage.size(); ++k) {
        tasks[i].usage.push_back(usage[k]);
      }
    }
    machine_tasks.resize(cell.num_machines());
    for (int m = 0; m < cell.num_machines(); ++m) {
      const std::span<const int32_t> row = cell.machine_tasks(m);
      machine_tasks[m].assign(row.begin(), row.end());
    }
  }

  // The old CellTrace::MachineUsageSeries, verbatim shape: a fresh output
  // allocation per call and a per-task rescan over [start, end).
  std::vector<double> MachineUsageSeries(int machine_index) const {
    std::vector<double> series(num_intervals, 0.0);
    for (const int32_t task_index : machine_tasks[machine_index]) {
      const AosTask& task = tasks[task_index];
      const Interval end =
          std::min(task.start + static_cast<Interval>(task.usage.size()), num_intervals);
      for (Interval t = std::max<Interval>(task.start, 0); t < end; ++t) {
        series[t] += task.usage[t - task.start];
      }
    }
    return series;
  }

  Interval Departure(const AosTask& task) const {
    const Interval end = task.start + static_cast<Interval>(task.usage.size());
    return std::max(end, task.start + 1);
  }

  // The old CellTrace::MachineLimitSeries shape: another allocation and
  // another full per-task pass over the same index.
  std::vector<double> MachineLimitSeries(int machine_index) const {
    std::vector<double> series(num_intervals, 0.0);
    for (const int32_t task_index : machine_tasks[machine_index]) {
      const AosTask& task = tasks[task_index];
      const Interval end = std::min(Departure(task), num_intervals);
      for (Interval t = std::max<Interval>(task.start, 0); t < end; ++t) {
        series[t] += task.limit;
      }
    }
    return series;
  }

  // And a third pass for the resident count.
  std::vector<int32_t> MachineResidentCount(int machine_index) const {
    std::vector<int32_t> series(num_intervals, 0);
    for (const int32_t task_index : machine_tasks[machine_index]) {
      const AosTask& task = tasks[task_index];
      const Interval end = std::min(Departure(task), num_intervals);
      for (Interval t = std::max<Interval>(task.start, 0); t < end; ++t) {
        ++series[t];
      }
    }
    return series;
  }

  int64_t HeapBytes() const {
    int64_t bytes = static_cast<int64_t>(tasks.capacity() * sizeof(AosTask));
    for (const AosTask& task : tasks) {
      bytes += static_cast<int64_t>(task.usage.capacity() * sizeof(float));
    }
    bytes += static_cast<int64_t>(machine_tasks.capacity() * sizeof(std::vector<int32_t>));
    for (const std::vector<int32_t>& row : machine_tasks) {
      bytes += static_cast<int64_t>(row.capacity() * sizeof(int32_t));
    }
    return bytes;
  }
};

// Full-cell machine scan: the per-interval (usage sum, limit sum, resident
// count) triple for every machine — exactly what fig3/fig12/trace_stats
// consume. The AoS side runs the three pre-refactor helpers (three output
// allocations, three passes over the scattered heap vectors per machine);
// the arena side streams all three through one cursor pass over the sealed
// slab. The checksum keeps both sides honest and unoptimizable.
double ScanAllMachinesAos(const AosTrace& aos) {
  double checksum = 0.0;
  for (size_t m = 0; m < aos.machine_tasks.size(); ++m) {
    const std::vector<double> usage = aos.MachineUsageSeries(static_cast<int>(m));
    const std::vector<double> limits = aos.MachineLimitSeries(static_cast<int>(m));
    const std::vector<int32_t> resident = aos.MachineResidentCount(static_cast<int>(m));
    for (Interval t = 0; t < aos.num_intervals; ++t) {
      checksum += usage[t] + limits[t] + static_cast<double>(resident[t]);
    }
  }
  return checksum;
}

double ScanAllMachinesArena(const CellTrace& cell, MachineSeriesCursor& cursor) {
  double checksum = 0.0;
  for (int m = 0; m < cell.num_machines(); ++m) {
    cursor.Reset(m);
    while (cursor.Next()) {
      checksum += cursor.usage() + cursor.limit_sum() + static_cast<double>(cursor.resident());
    }
  }
  return checksum;
}

// Arg(0) = 0: per-task-vector AoS layout; Arg(0) = 1: columnar arena via the
// streaming cursor. The machine_scans_per_second ratio between the two rows
// is the layout speedup tracked in BENCH_trace.json.
void BM_TraceLayout(benchmark::State& state) {
  const CellTrace& cell = SweepCell();
  const bool arena = state.range(0) != 0;
  const AosTrace aos(cell);
  MachineSeriesCursor cursor(cell);
  for (auto _ : state) {
    const double checksum = arena ? ScanAllMachinesArena(cell, cursor) : ScanAllMachinesAos(aos);
    benchmark::DoNotOptimize(checksum);
  }
  const double machine_scans =
      static_cast<double>(state.iterations()) * static_cast<double>(cell.num_machines());
  state.counters["machine_scans_per_second"] =
      benchmark::Counter(machine_scans, benchmark::Counter::kIsRate);
  state.counters["intervals_per_second"] = benchmark::Counter(
      machine_scans * static_cast<double>(cell.num_intervals), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceLayout)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Thread-matrix helpers shared by the cluster and stream recorders.

// Cores visible to this process; recorded in every matrix row so the check
// scripts know whether a speedup target was physically measurable on the
// host that produced the row (an 8-thread pool on a 1-core container cannot
// exceed 1x no matter how contention-free the engine is).
int HostCores() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

// Pool sizes for the bench matrices, from $CRF_BENCH_THREADS (default
// "1,4,8,16"). The serial lane (1) is always included — it is the baseline
// every speedup in the matrix is computed against.
std::vector<int> BenchThreadCounts() {
  const std::string spec = GetEnvString("CRF_BENCH_THREADS", "1,4,8,16");
  std::vector<int> counts{1};
  std::stringstream in(spec);
  std::string token;
  while (std::getline(in, token, ',')) {
    const int n = std::atoi(token.c_str());
    if (n >= 1) {
      counts.push_back(n);
    }
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

// ---------------------------------------------------------------------------
// BENCH_cluster.json: tracked cluster-engine thread-scaling matrix.
//
// Controlled by $CRF_CLUSTER_BENCH: "off" skips, "short" (default) times one
// day over a small cell, "full" one day over a 2k-machine cell — the problem
// size at which the per-interval fan-out amortizes (ROADMAP "make
// parallelism actually pay") — and "scale" runs the cloud-scale lane below
// instead of the matrix. Every lane runs the indexed placement engine. v3
// added the memory columns: every row reports `peak_rss_bytes` (the lane's
// VmHWM), plus `load_ms`/`load_mode` so matrix rows (which generate their
// cell in-process, load_mode "generated", load_ms 0) and scale rows (which
// mmap a streamed .crftrace) share one schema.
//
// v4 restructures the matrix around the sharded placement engine: one
// reference row per matrix (threads 1, placement_shards 0 — the global
// scheduler) plus one sharded row (placement_shards $CRF_BENCH_SHARDS,
// default 8) per pool size in $CRF_BENCH_THREADS. Rows carry the packing-
// quality columns (`violation_rate_p90`, `pending_task_intervals`,
// `tasks_timed_out`) the check script gates sharded rows against the
// reference with, plus the isolated generator placement-phase throughput
// (`placement_phase_ms` / `placement_phase_per_sec`) whose 8-thread scaling
// is the placement-parallelism gate. The record lands in
// $CRF_BENCH_CLUSTER_FILE (default ./BENCH_cluster.json) as
// {"schema":"crf-cluster-bench-v4","entries":[...]}; reruns append, so the
// tracked file accumulates a regression history.
//
// The "scale" lane is the cloud-scale trace-I/O proof (DESIGN.md §6c): it
// stream-generates a $CRF_SCALE_MACHINES-machine (default 100000) one-day
// binary trace with bounded-probe placement ($CRF_SCALE_PROBES, default 16)
// — never holding the cell in memory — then mmap-loads it and drives the
// serial streaming replayer over the mapped arena with per-machine page
// drops. Its row records gen_ms / file_bytes for the writer, load_ms /
// resident_after_load_bytes for the mapped open, events_per_sec for the
// replay, and two memory truths: resident_after_load_bytes and
// resident_after_replay_bytes — the arena pages this process materialized
// after the open and after walking the entire trace — must both stay an
// order of magnitude under file_bytes (the zero-copy claim), while
// peak_rss_bytes (load + replay VmHWM) is recorded un-gated because it is
// dominated by the replayer's own per-machine predictor state, which scales
// with the cell no matter how the trace is loaded. The trace lands in
// $CRF_BENCH_SCALE_TRACE when set (kept), else in a temp file (deleted).

struct ClusterBenchTiming {
  double machine_steps_per_sec = 0.0;
  double placements_per_sec = 0.0;
  int64_t placement_attempts = 0;
  int64_t tasks_placed = 0;
  // Packing-quality telemetry, compared across engines by the check script.
  int64_t tasks_timed_out = 0;
  int64_t pending_task_intervals = 0;
  double violation_rate_p90 = 0.0;
};

ClusterBenchTiming TimeClusterSim(const CellProfile& profile,
                                  const ClusterSimOptions& options) {
  // One warm-up run (page in the code and the allocator), then one timed run.
  RunClusterSim(profile, options, Rng(10));
  const auto start = std::chrono::steady_clock::now();
  const ClusterSimResult result = RunClusterSim(profile, options, Rng(10));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  ClusterBenchTiming timing;
  timing.machine_steps_per_sec =
      static_cast<double>(profile.num_machines) * options.num_intervals / seconds;
  timing.placements_per_sec = static_cast<double>(result.placement_attempts) / seconds;
  timing.placement_attempts = result.placement_attempts;
  timing.tasks_placed = result.tasks_placed;
  timing.tasks_timed_out = result.tasks_timed_out;
  timing.pending_task_intervals = result.pending_task_intervals;
  const std::vector<ClusterSimResult> results{result};
  const GroupMetrics metrics = ComputeGroupMetrics(result.predictor_name, results);
  timing.violation_rate_p90 = metrics.violation_rate.Quantile(0.9);
  return timing;
}

// The isolated placement-phase throughput matrix: the generator's placement
// phase (initial fill + arrival sweep, no usage generation) on the same cell,
// per pool size. This is the number the sharded engine exists to scale —
// machine_steps_per_sec is dominated by the per-interval usage stepping,
// which parallelized two PRs ago.
struct PlacementPhaseTiming {
  double ms = 0.0;
  double per_sec = 0.0;
};

PlacementPhaseTiming TimePlacementPhase(const CellProfile& profile, int shards,
                                        ThreadPool* pool) {
  GeneratorOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.placement_probes = 16;
  options.placement_shards = shards;
  options.pool = pool;
  MeasurePlacementPhase(profile, options, Rng(10));  // warm-up
  const PlacementPhaseStats stats = MeasurePlacementPhase(profile, options, Rng(10));
  PlacementPhaseTiming timing;
  timing.ms = stats.placement_ms;
  timing.per_sec = stats.placement_ms > 0.0
                       ? stats.placement_attempts * 1000.0 / stats.placement_ms
                       : 0.0;
  return timing;
}

std::string TodayUtc() {
  const std::time_t now = std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buffer[16];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%d", &tm_utc);
  return buffer;
}

// Appends one entry to a tracked {"schema":..., "entries":[...]} JSON file,
// keeping prior history; a missing or foreign-schema file is rewritten from
// scratch.
void AppendTrackedBenchEntry(const std::string& path, const std::string& schema,
                             const std::string& entry) {
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      existing = buffer.str();
    }
  }
  std::string output;
  const size_t close = existing.rfind(']');
  if (close != std::string::npos &&
      existing.find("\"" + schema + "\"") != std::string::npos) {
    // Append to the existing entries array, keeping prior history.
    const bool has_entries = existing.find('{', existing.find("\"entries\"")) < close;
    output = existing.substr(0, close);
    while (!output.empty() && (output.back() == ' ' || output.back() == '\n')) {
      output.pop_back();
    }
    output += has_entries ? ",\n" : "\n";
    output += entry;
    output += "\n  ";
    output += existing.substr(close);
  } else {
    output = "{\n  \"schema\": \"" + schema + "\",\n  \"entries\": [\n" + entry + "\n  ]\n}\n";
  }
  std::ofstream out(path, std::ios::trunc);
  out << output;
}

void RecordClusterScaleBench();

void RecordClusterBench() {
  const std::string mode = GetEnvString("CRF_CLUSTER_BENCH", "short");
  if (mode == "off") {
    return;
  }
  if (mode == "scale") {
    RecordClusterScaleBench();
    return;
  }
  const bool full = mode == "full";

  CellProfile profile = SimCellProfile('a');
  profile.num_machines = full ? 2048 : 192;
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerDay;
  options.warmup = kIntervalsPerDay / 4;
  // Every lane uses the production placement engine; the matrix isolates the
  // step-loop threading. (BM_SchedulerPlace still tracks linear-scan vs
  // indexed placement in isolation.)
  options.placement = PlacementEngine::kIndexed;

  // v4 matrix: one reference lane (the global scheduler, serial) plus one
  // sharded lane per pool size. The reference row carries the quality
  // numbers the sharded rows are gated against; the sharded rows carry the
  // thread scaling. Each lane also times the generator's isolated placement
  // phase at the same shard/pool configuration.
  const int matrix_shards = static_cast<int>(GetEnvInt("CRF_BENCH_SHARDS", 8));
  struct Lane {
    int threads = 1;
    int placement_shards = 0;
    ClusterBenchTiming timing;
    int64_t peak_rss_bytes = 0;
    PlacementPhaseTiming phase;
  };
  std::vector<Lane> lanes;
  {
    options.placement_shards = 0;
    options.pool = nullptr;
    options.parallel = false;
    ResetPeakRss();
    Lane lane{1, 0, TimeClusterSim(profile, options), 0, {}};
    lane.peak_rss_bytes = ReadPeakRssBytes();
    lane.phase = TimePlacementPhase(profile, 0, nullptr);
    lanes.push_back(lane);
  }
  for (const int threads : BenchThreadCounts()) {
    ThreadPool pool(threads);
    options.placement_shards = matrix_shards;
    options.pool = &pool;
    options.parallel = threads > 1;
    ResetPeakRss();
    Lane lane{threads, matrix_shards, TimeClusterSim(profile, options), 0, {}};
    lane.peak_rss_bytes = ReadPeakRssBytes();
    lane.phase = TimePlacementPhase(profile, matrix_shards, threads > 1 ? &pool : nullptr);
    lanes.push_back(lane);
  }

  // Integrity gate: the determinism contract says every pool size places
  // exactly the same tasks for a fixed (seed, shards), so sharded lanes with
  // diverging counters would be timing different computations. (The
  // reference lane is a different engine and legitimately differs.)
  const Lane& first_sharded = lanes[1];
  for (const Lane& lane : lanes) {
    if (lane.placement_shards != matrix_shards) {
      continue;
    }
    if (lane.timing.tasks_placed != first_sharded.timing.tasks_placed ||
        lane.timing.placement_attempts != first_sharded.timing.placement_attempts) {
      std::fprintf(stderr,
                   "cluster bench: sharded lanes diverged (threads=%d placed %lld vs "
                   "%lld), not recording\n",
                   lane.threads, static_cast<long long>(lane.timing.tasks_placed),
                   static_cast<long long>(first_sharded.timing.tasks_placed));
      return;
    }
  }

  const std::string matrix = TodayUtc() + std::string("-") + (full ? "full" : "short");
  const double base = first_sharded.timing.machine_steps_per_sec;
  const std::string path = GetEnvString("CRF_BENCH_CLUSTER_FILE", "BENCH_cluster.json");
  for (const Lane& lane : lanes) {
    // Serial rows (the reference engine and the one-thread sharded baseline)
    // report speedup 1.0 by definition.
    const double speedup = lane.threads == 1 ? 1.0 : lane.timing.machine_steps_per_sec / base;
    std::ostringstream entry;
    entry.precision(6);
    entry << "    {\n"
          << "      \"date\": \"" << TodayUtc() << "\",\n"
          << "      \"mode\": \"" << (full ? "full" : "short") << "\",\n"
          << "      \"matrix\": \"" << matrix << "\",\n"
          << "      \"threads\": " << lane.threads << ",\n"
          << "      \"parallel\": " << (lane.threads > 1 ? "true" : "false") << ",\n"
          << "      \"host_cores\": " << HostCores() << ",\n"
          << "      \"placement_shards\": " << lane.placement_shards << ",\n"
          << "      \"num_machines\": " << profile.num_machines << ",\n"
          << "      \"num_intervals\": " << options.num_intervals << ",\n"
          << "      \"machine_steps_per_sec\": " << lane.timing.machine_steps_per_sec << ",\n"
          << "      \"placements_per_sec\": " << lane.timing.placements_per_sec << ",\n"
          << "      \"parallel_speedup\": " << speedup << ",\n"
          << "      \"placement_attempts\": " << lane.timing.placement_attempts << ",\n"
          << "      \"tasks_placed\": " << lane.timing.tasks_placed << ",\n"
          << "      \"tasks_timed_out\": " << lane.timing.tasks_timed_out << ",\n"
          << "      \"pending_task_intervals\": " << lane.timing.pending_task_intervals
          << ",\n"
          << "      \"violation_rate_p90\": " << lane.timing.violation_rate_p90 << ",\n"
          << "      \"placement_phase_ms\": " << lane.phase.ms << ",\n"
          << "      \"placement_phase_per_sec\": " << lane.phase.per_sec << ",\n"
          << "      \"peak_rss_bytes\": " << lane.peak_rss_bytes << ",\n"
          << "      \"load_ms\": 0,\n"
          << "      \"load_mode\": \"generated\"\n"
          << "    }";
    AppendTrackedBenchEntry(path, "crf-cluster-bench-v4", entry.str());
    std::printf(
        "cluster bench (%s): threads=%d shards=%d %.0f machine-steps/s (%.2fx), "
        "placement phase %.0f/s -> %s\n",
        full ? "full" : "short", lane.threads, lane.placement_shards,
        lane.timing.machine_steps_per_sec, speedup, lane.phase.per_sec, path.c_str());
  }
}

// $CRF_CLUSTER_BENCH=scale: the cloud-scale stream-generate / mmap-load /
// streaming-replay pipeline (see the v3 schema comment above). One row per
// run, mode "scale".
void RecordClusterScaleBench() {
  const int num_machines = static_cast<int>(GetEnvInt("CRF_SCALE_MACHINES", 100000));
  const int probes = static_cast<int>(GetEnvInt("CRF_SCALE_PROBES", 16));
  const int shards = static_cast<int>(GetEnvInt("CRF_SCALE_SHARDS", 8));
  const int threads = static_cast<int>(GetEnvInt("CRF_SCALE_THREADS", HostCores()));
  std::string trace_path = GetEnvString("CRF_BENCH_SCALE_TRACE", "");
  const bool keep_trace = !trace_path.empty();
  if (!keep_trace) {
    trace_path =
        (std::filesystem::temp_directory_path() / "crf_bench_scale.crftrace").string();
  }

  CellProfile profile = SimCellProfile('a');
  profile.num_machines = num_machines;
  GeneratorOptions gen_options;
  gen_options.num_intervals = kIntervalsPerDay;
  // A full worst-fit scan per placement is O(machines); at 100k machines the
  // placement phase alone would dwarf the I/O being measured, so the scale
  // lane uses bounded-probe placement (still deterministic for the seed).
  gen_options.placement_probes = probes;
  // Sharded placement + a generation pool: the placement batches and the
  // per-machine usage loops run shard-parallel. The bytes depend on
  // (seed, shards, probes) but never on the pool size.
  gen_options.placement_shards = shards;
  std::optional<ThreadPool> gen_pool;
  if (threads > 1) {
    gen_pool.emplace(threads);
    gen_options.pool = &*gen_pool;
  }

  std::printf(
      "cluster bench (scale): streaming %d machines x %d intervals "
      "(%d shards, %d threads) -> %s\n",
      num_machines, static_cast<int>(gen_options.num_intervals), shards, threads,
      trace_path.c_str());
  ResetPeakRss();
  std::string error;
  StreamedTraceInfo info;
  const auto gen_start = std::chrono::steady_clock::now();
  if (!GenerateCellTraceToFile(profile, gen_options, Rng(10), trace_path, &error, &info)) {
    std::fprintf(stderr, "cluster bench (scale): streaming generation failed: %s\n",
                 error.c_str());
    return;
  }
  const double gen_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - gen_start)
          .count();
  const int64_t gen_peak_rss = ReadPeakRssBytes();

  ResetPeakRss();
  TraceLoadOptions load_options;
  load_options.mode = TraceLoadMode::kMapped;
  const auto load_start = std::chrono::steady_clock::now();
  std::optional<CellTrace> cell = LoadCellTrace(trace_path, load_options, &error);
  const double load_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - load_start)
          .count();
  if (!cell.has_value()) {
    std::fprintf(stderr, "cluster bench (scale): mmap load failed: %s\n", error.c_str());
    return;
  }
  // Arena pages this process materialized during the open (the mapping's own
  // smaps Rss — not mincore residency, which would count the hot page cache
  // the writer just left behind).
  const int64_t resident_after_load = ReadMappedFileRssBytes(trace_path);

  // Serial streaming replay straight off the mapped arena: the replayer
  // drops each machine's usage pages after its last tick, so peak RSS tracks
  // machines-in-flight, not the trace.
  ReplayOptions replay_options;
  replay_options.parallel = false;
  replay_options.latency_sample_period = 0;
  const auto replay_start = std::chrono::steady_clock::now();
  StreamReplayer replayer(*cell, ProductionMaxSpec(), replay_options);
  replayer.AdvanceToEnd();
  const uint64_t events = replayer.Metrics().TotalEvents();
  const SimResult result = replayer.Finish();
  const double replay_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - replay_start).count();
  double mean_violation_rate = result.MeanViolationRate();
  benchmark::DoNotOptimize(mean_violation_rate);
  const double events_per_sec = static_cast<double>(events) / replay_seconds;
  // Covers the mapped load and the whole replay; generation is reported
  // separately (its watermark belongs to the writer, not the reader path).
  // Peak RSS here is dominated by the replayer's per-machine predictor and
  // per-task history state — O(cell), not O(trace) — so it is recorded, not
  // gated against the file size. The zero-copy claim for the replay phase is
  // the next line: arena pages still resident once the replay has walked the
  // whole trace. DropMachinePages must have kept that near the metadata
  // floor; a replay that materialized the bulk slabs shows up as ~file_bytes.
  const int64_t peak_rss = ReadPeakRssBytes();
  const int64_t resident_after_replay = ReadMappedFileRssBytes(trace_path);

  std::ostringstream entry;
  entry.precision(6);
  entry << "    {\n"
        << "      \"date\": \"" << TodayUtc() << "\",\n"
        << "      \"mode\": \"scale\",\n"
        << "      \"matrix\": \"" << TodayUtc() << "-scale\",\n"
        << "      \"threads\": " << std::max(1, threads) << ",\n"
        << "      \"parallel\": " << (threads > 1 ? "true" : "false") << ",\n"
        << "      \"host_cores\": " << HostCores() << ",\n"
        << "      \"placement_shards\": " << shards << ",\n"
        << "      \"num_machines\": " << num_machines << ",\n"
        << "      \"num_intervals\": " << gen_options.num_intervals << ",\n"
        << "      \"num_tasks\": " << info.num_tasks << ",\n"
        << "      \"placement_probes\": " << probes << ",\n"
        << "      \"placement_ms\": " << info.placement_ms << ",\n"
        << "      \"placement_attempts\": " << info.placement_attempts << ",\n"
        << "      \"placements_per_sec\": "
        << (info.placement_ms > 0.0 ? info.placement_attempts * 1000.0 / info.placement_ms
                                    : 0.0)
        << ",\n"
        << "      \"file_bytes\": " << info.file_bytes << ",\n"
        << "      \"gen_ms\": " << gen_ms << ",\n"
        << "      \"gen_peak_rss_bytes\": " << gen_peak_rss << ",\n"
        << "      \"load_ms\": " << load_ms << ",\n"
        << "      \"load_mode\": \"mmap\",\n"
        << "      \"resident_after_load_bytes\": " << resident_after_load << ",\n"
        << "      \"resident_after_replay_bytes\": " << resident_after_replay << ",\n"
        << "      \"events\": " << events << ",\n"
        << "      \"events_per_sec\": " << events_per_sec << ",\n"
        << "      \"peak_rss_bytes\": " << peak_rss << "\n"
        << "    }";
  const std::string path = GetEnvString("CRF_BENCH_CLUSTER_FILE", "BENCH_cluster.json");
  AppendTrackedBenchEntry(path, "crf-cluster-bench-v4", entry.str());
  std::printf(
      "cluster bench (scale): %d machines, %lld tasks, gen %.0f ms "
      "(peak rss %.1f MB), mmap load %.2f ms (%.1f MB resident of %.1f MB file), "
      "replay %.0f events/s (%.1f MB arena resident after, peak rss %.1f MB) -> %s\n",
      num_machines, static_cast<long long>(info.num_tasks), gen_ms,
      gen_peak_rss / 1048576.0, load_ms, resident_after_load / 1048576.0,
      info.file_bytes / 1048576.0, events_per_sec, resident_after_replay / 1048576.0,
      peak_rss / 1048576.0, path.c_str());

  if (!keep_trace) {
    std::error_code ec;
    std::filesystem::remove(trace_path, ec);
  }
}

// ---------------------------------------------------------------------------
// BENCH_sweep.json: tracked sweep-engine throughput record.
//
// Controlled by $CRF_SWEEP_BENCH: "off" skips, "short" (default) runs the
// 27-point Fig 8+9-style grid (n-sigma, rc-like, chance, flex axes) over a
// small cell-half-week, "full" over a larger cell-week. Times the per-spec
// SimulateCell loop against one SimulateCellMulti call — both behind one
// shared OracleCache, so the ratio isolates the engine, not oracle
// recomputation. The record lands in $CRF_BENCH_SWEEP_FILE (default
// ./BENCH_sweep.json) as {"schema":"crf-sweep-bench-v2","entries":[...]};
// reruns append. v2 adds the grid-level tail columns (worst violation
// streak, worst severity p999, worst savings-at-risk across all
// spec-machine pairs) so the tracked record captures the risk profile of
// the grid, not just its mean throughput.

void RecordSweepBench() {
  const std::string mode = GetEnvString("CRF_SWEEP_BENCH", "short");
  if (mode == "off") {
    return;
  }
  const bool full = mode == "full";

  CellProfile profile = SimCellProfile('a');
  profile.num_machines = full ? 48 : 16;
  GeneratorOptions gen_options;
  gen_options.num_intervals = full ? kIntervalsPerWeek : kIntervalsPerWeek / 2;
  CellTrace cell = GenerateCellTrace(profile, gen_options, Rng(11));
  cell.FilterToServingTasks();
  const std::vector<PredictorSpec> specs = SweepGridSpecs();

  OracleCache cache;
  SimOptions options;
  options.oracle_cache = &cache;

  // Warm-up pass: pages in the code and fills the oracle cache, so both
  // timed passes run against a warm memo and differ only in engine work.
  SimulateCellMulti(cell, specs, options);

  const auto per_spec_start = std::chrono::steady_clock::now();
  std::vector<SimResult> per_spec;
  per_spec.reserve(specs.size());
  for (const PredictorSpec& spec : specs) {
    per_spec.push_back(SimulateCell(cell, spec, options));
  }
  const double per_spec_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - per_spec_start)
          .count();

  const auto multi_start = std::chrono::steady_clock::now();
  const std::vector<SimResult> multi = SimulateCellMulti(cell, specs, options);
  const double multi_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - multi_start).count();

  // Integrity gate: the engines claim matching metrics (including the
  // crf/risk tail metrics), so a tracked speedup with diverging results
  // would be meaningless.
  int64_t total_violations = 0;
  int64_t max_violation_streak = 0;
  double worst_severity_p999 = 0.0;
  double worst_savings_at_risk = std::numeric_limits<double>::infinity();
  for (size_t s = 0; s < specs.size(); ++s) {
    for (size_t m = 0; m < per_spec[s].machines.size(); ++m) {
      const MachineMetrics& a = per_spec[s].machines[m];
      const MachineMetrics& b = multi[s].machines[m];
      if (a.violations != b.violations ||
          a.tail.max_violation_streak != b.tail.max_violation_streak ||
          a.tail.severity_p999 != b.tail.severity_p999 ||
          a.tail.savings_at_risk != b.tail.savings_at_risk) {
        std::fprintf(stderr,
                     "sweep bench: engines diverged (spec %zu machine %zu), not recording\n",
                     s, m);
        return;
      }
      total_violations += a.violations;
      max_violation_streak = std::max(max_violation_streak, a.tail.max_violation_streak);
      worst_severity_p999 = std::max(worst_severity_p999, a.tail.severity_p999);
      if (a.occupied_intervals > 0) {
        worst_savings_at_risk = std::min(worst_savings_at_risk, a.tail.savings_at_risk);
      }
    }
    const double savings_delta =
        std::abs(per_spec[s].MeanCellSavings() - multi[s].MeanCellSavings());
    if (savings_delta > 1e-9) {
      std::fprintf(stderr, "sweep bench: savings diverged (spec %zu), not recording\n", s);
      return;
    }
  }

  const double machine_sims =
      static_cast<double>(specs.size()) * static_cast<double>(cell.num_machines());
  const double speedup = per_spec_seconds / multi_seconds;
  std::ostringstream entry;
  entry.precision(6);
  entry << "    {\n"
        << "      \"date\": \"" << TodayUtc() << "\",\n"
        << "      \"mode\": \"" << (full ? "full" : "short") << "\",\n"
        << "      \"threads\": " << ThreadPool::Default().num_threads() << ",\n"
        << "      \"num_machines\": " << profile.num_machines << ",\n"
        << "      \"num_intervals\": " << gen_options.num_intervals << ",\n"
        << "      \"num_specs\": " << specs.size() << ",\n"
        << "      \"per_spec_machines_per_sec\": " << machine_sims / per_spec_seconds << ",\n"
        << "      \"multi_machines_per_sec\": " << machine_sims / multi_seconds << ",\n"
        << "      \"speedup\": " << speedup << ",\n"
        << "      \"total_violations\": " << total_violations << ",\n"
        << "      \"max_violation_streak\": " << max_violation_streak << ",\n"
        << "      \"worst_severity_p999\": " << worst_severity_p999 << ",\n"
        << "      \"worst_savings_at_risk\": "
        << (std::isfinite(worst_savings_at_risk) ? worst_savings_at_risk : 0.0) << "\n"
        << "    }";

  const std::string path = GetEnvString("CRF_BENCH_SWEEP_FILE", "BENCH_sweep.json");
  AppendTrackedBenchEntry(path, "crf-sweep-bench-v2", entry.str());
  std::printf("sweep bench (%s): per-spec %.3fs multi %.3fs over %zu specs (%.2fx) -> %s\n",
              full ? "full" : "short", per_spec_seconds, multi_seconds, specs.size(), speedup,
              path.c_str());
}

// ---------------------------------------------------------------------------
// BENCH_trace.json: tracked trace-layout throughput record.
//
// Controlled by $CRF_TRACE_BENCH: "off" skips, "short" (default) scans a
// 16-machine half-week cell, "full" a 64-machine fortnight (long enough
// that the arena's bulk dwarfs the per-task metadata a mapped open
// faults in, so the residency ratio below is a clean order-of-magnitude
// signal). Times full-cell
// machine scans through the pre-refactor per-task-vector AoS layout against
// the columnar arena + MachineSeriesCursor on identical data, and records
// the resident footprint of each layout in bytes per task-interval. v2 adds
// the load-path comparison: the cell is saved as a binary .crftrace and
// opened both ways — heap (one fread of the whole arena) and mmap
// (zero-copy) — recording per-mode load time and the process-RSS growth of
// the open, before anything touches the samples. A heap load materializes
// the whole arena; the mapped open only faults the metadata slabs the
// validator reads, so both ratios are the tracked order-of-magnitude proof
// of the zero-copy claim. The record lands
// in $CRF_BENCH_TRACE_FILE (default ./BENCH_trace.json) as
// {"schema":"crf-trace-bench-v2","entries":[...]}; reruns append.

void RecordTraceBench() {
  const std::string mode = GetEnvString("CRF_TRACE_BENCH", "short");
  if (mode == "off") {
    return;
  }
  const bool full = mode == "full";

  CellProfile profile = SimCellProfile('a');
  profile.num_machines = full ? 64 : 16;
  GeneratorOptions gen_options;
  gen_options.num_intervals = full ? 2 * kIntervalsPerWeek : kIntervalsPerWeek / 2;
  CellTrace cell = GenerateCellTrace(profile, gen_options, Rng(12));
  cell.FilterToServingTasks();
  const AosTrace aos(cell);
  MachineSeriesCursor cursor(cell);

  // Integrity gate: both layouts must produce the same per-machine usage,
  // limit, and resident series, or the tracked speedup is comparing
  // different computations.
  for (int m = 0; m < cell.num_machines(); ++m) {
    const std::vector<double> usage = aos.MachineUsageSeries(m);
    const std::vector<double> limits = aos.MachineLimitSeries(m);
    const std::vector<int32_t> resident = aos.MachineResidentCount(m);
    cursor.Reset(m);
    Interval t = 0;
    while (cursor.Next()) {
      if (std::abs(cursor.usage() - usage[t]) > 1e-6 ||
          std::abs(cursor.limit_sum() - limits[t]) > 1e-6 ||
          cursor.resident() != resident[t]) {
        std::fprintf(stderr, "trace bench: layouts diverged (machine %d interval %d)\n", m,
                     static_cast<int>(t));
        return;
      }
      ++t;
    }
    if (t != cell.num_intervals) {
      std::fprintf(stderr, "trace bench: cursor stopped early (machine %d)\n", m);
      return;
    }
  }

  const auto time_scans = [](auto&& scan) {
    scan();  // Warm-up: page in the layout before timing.
    int reps = 0;
    const auto start = std::chrono::steady_clock::now();
    double seconds = 0.0;
    do {
      double checksum = scan();
      benchmark::DoNotOptimize(checksum);
      ++reps;
      seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    } while (seconds < 0.5);
    return seconds / reps;
  };
  const double aos_seconds = time_scans([&] { return ScanAllMachinesAos(aos); });
  const double arena_seconds =
      time_scans([&] { return ScanAllMachinesArena(cell, cursor); });

  const double scans = static_cast<double>(cell.num_machines());
  const double speedup = aos_seconds / arena_seconds;
  const int64_t task_intervals = cell.usage_sample_count();
  const double arena_bytes_per_ti =
      task_intervals > 0
          ? static_cast<double>(cell.arena_bytes().size()) / static_cast<double>(task_intervals)
          : 0.0;
  const double aos_bytes_per_ti =
      task_intervals > 0
          ? static_cast<double>(aos.HeapBytes()) / static_cast<double>(task_intervals)
          : 0.0;

  // Load-path comparison: save the cell as a binary trace, then open it
  // heap vs mmap, measuring each quantity under the cache condition where
  // it means something.
  //
  // Residency is measured on a cold page cache (fsync + POSIX_FADV_DONTNEED
  // first): a freshly written file's cache sits in large folios, and
  // faulting one page of a folio maps the whole folio, crediting the mapped
  // open with pages it never asked for. Cold, a heap load materializes the
  // whole arena by construction (one fread into a fresh buffer) while a
  // mapped load materializes only the pages the validator touched — read
  // from the mapping's own smaps Rss (mincore would count page-cache pages
  // the process never touched, whole-process RSS deltas pick up allocator
  // churn).
  //
  // Load time is then measured hot (best of 3 once the cache is repopulated):
  // that isolates the copy-vs-map cost the load mode controls, where cold
  // timing would mostly rank the disk scheduler (one sequential fread vs the
  // validator's scattered faults with readahead off).
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "crf_bench_trace.crftrace").string();
  SaveCellTraceBinary(cell, trace_path);
  const auto drop_file_cache = [&trace_path] {
    const int fd = open(trace_path.c_str(), O_RDONLY);
    if (fd < 0) {
      return;
    }
    fsync(fd);
    posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    close(fd);
  };
  const auto measure_load = [&](TraceLoadMode load_mode, int64_t* resident_bytes) {
    TraceLoadOptions load_options;
    load_options.mode = load_mode;
    const auto open_trace = [&](std::string* error) {
      return LoadCellTrace(trace_path, load_options, error);
    };
    // Cold rep: residency.
    drop_file_cache();
    *resident_bytes = 0;
    {
      std::string error;
      std::optional<CellTrace> loaded = open_trace(&error);
      if (!loaded.has_value()) {
        std::fprintf(stderr, "trace bench: load failed: %s\n", error.c_str());
        return std::numeric_limits<double>::infinity();
      }
      *resident_bytes = loaded->is_mapped()
                            ? ReadMappedFileRssBytes(trace_path)
                            : static_cast<int64_t>(loaded->arena_bytes().size());
    }
    // Hot reps: load time. The cold rep repopulated every page this mode
    // reads, and rep 0 is discarded as one extra warm-up, so timed reps see
    // a fully warm cache for their access pattern.
    double best_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 4; ++rep) {
      std::string error;
      const auto start = std::chrono::steady_clock::now();
      std::optional<CellTrace> loaded = open_trace(&error);
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
              .count();
      if (!loaded.has_value()) {
        std::fprintf(stderr, "trace bench: load failed: %s\n", error.c_str());
        return std::numeric_limits<double>::infinity();
      }
      if (rep > 0) {  // rep 0 is the cache warm-up
        best_ms = std::min(best_ms, ms);
      }
    }
    return best_ms;
  };
  int64_t heap_resident = 0;
  int64_t mmap_resident = 0;
  const double heap_load_ms = measure_load(TraceLoadMode::kHeap, &heap_resident);
  const double mmap_load_ms = measure_load(TraceLoadMode::kMapped, &mmap_resident);
  {
    std::error_code ec;
    std::filesystem::remove(trace_path, ec);
  }
  if (!std::isfinite(heap_load_ms) || !std::isfinite(mmap_load_ms)) {
    return;
  }
  const double load_speedup = mmap_load_ms > 0.0 ? heap_load_ms / mmap_load_ms : 0.0;

  std::ostringstream entry;
  entry.precision(6);
  entry << "    {\n"
        << "      \"date\": \"" << TodayUtc() << "\",\n"
        << "      \"mode\": \"" << (full ? "full" : "short") << "\",\n"
        << "      \"num_machines\": " << cell.num_machines() << ",\n"
        << "      \"num_intervals\": " << cell.num_intervals << ",\n"
        << "      \"num_tasks\": " << cell.num_tasks() << ",\n"
        << "      \"task_intervals\": " << task_intervals << ",\n"
        << "      \"aos_machine_scans_per_sec\": " << scans / aos_seconds << ",\n"
        << "      \"arena_machine_scans_per_sec\": " << scans / arena_seconds << ",\n"
        << "      \"speedup\": " << speedup << ",\n"
        << "      \"aos_bytes_per_task_interval\": " << aos_bytes_per_ti << ",\n"
        << "      \"arena_bytes_per_task_interval\": " << arena_bytes_per_ti << ",\n"
        << "      \"heap_load_ms\": " << heap_load_ms << ",\n"
        << "      \"mmap_load_ms\": " << mmap_load_ms << ",\n"
        << "      \"heap_load_resident_bytes\": " << heap_resident << ",\n"
        << "      \"mmap_load_resident_bytes\": " << mmap_resident << ",\n"
        << "      \"load_speedup\": " << load_speedup << "\n"
        << "    }";

  const std::string path = GetEnvString("CRF_BENCH_TRACE_FILE", "BENCH_trace.json");
  AppendTrackedBenchEntry(path, "crf-trace-bench-v2", entry.str());
  std::printf(
      "trace bench (%s): aos %.0f arena %.0f machine-scans/s (%.2fx), "
      "%.1f -> %.1f bytes/task-interval, load heap %.2f ms / mmap %.2f ms "
      "(%.0fx), resident %lld -> %lld bytes -> %s\n",
      full ? "full" : "short", scans / aos_seconds, scans / arena_seconds, speedup,
      aos_bytes_per_ti, arena_bytes_per_ti, heap_load_ms, mmap_load_ms, load_speedup,
      static_cast<long long>(heap_resident), static_cast<long long>(mmap_resident),
      path.c_str());
}

// ---------------------------------------------------------------------------
// BENCH_stream.json: tracked streaming-ingest thread-scaling matrix.
//
// Controlled by $CRF_STREAM_BENCH: "off" skips, "short" (default) streams a
// 64-machine half-week cell, "full" a 2k-machine week — the problem size at
// which shard fan-out amortizes (ROADMAP "make parallelism actually pay").
// One row lands per pool size in $CRF_BENCH_THREADS; the `threads: 1` row is
// the serial baseline every `parallel_speedup` is computed against. Before
// timing, the streamed per-machine metrics are gated bit-identical against
// the batch engine on the same cell, and each timed lane's full SimResult
// (including the shard-merged cell series) is gated bit-identical against
// the serial lane — a tracked events/s number for a stream that diverged
// would be measuring a different computation. The record lands in
// $CRF_BENCH_STREAM_FILE (default ./BENCH_stream.json) as
// {"schema":"crf-stream-bench-v2","entries":[...]}; reruns append.

void RecordStreamBench() {
  const std::string mode = GetEnvString("CRF_STREAM_BENCH", "short");
  if (mode == "off") {
    return;
  }
  const bool full = mode == "full";

  CellProfile profile = SimCellProfile('a');
  profile.num_machines = full ? 2048 : 64;
  GeneratorOptions gen_options;
  gen_options.num_intervals = full ? kIntervalsPerWeek : kIntervalsPerWeek / 2;
  CellTrace cell = GenerateCellTrace(profile, gen_options, Rng(12));
  cell.FilterToServingTasks();
  const PredictorSpec spec = ProductionMaxSpec();

  ReplayOptions options;
  options.latency_sample_period = 0;

  // Integrity gate 1: streamed per-machine metrics must equal the batch
  // engine's bit for bit (the replay.h contract).
  SimOptions sim_options;
  sim_options.parallel = false;
  const SimResult batch = SimulateCell(cell, spec, sim_options);
  ReplayOptions serial_options = options;
  serial_options.parallel = false;
  StreamReplayer check(cell, spec, serial_options);
  check.AdvanceToEnd();
  const SimResult streamed = check.Finish();
  for (int m = 0; m < cell.num_machines(); ++m) {
    const MachineMetrics& s = streamed.machines[m];
    const MachineMetrics& b = batch.machines[m];
    if (s.violations != b.violations || s.occupied_intervals != b.occupied_intervals ||
        s.mean_violation_severity != b.mean_violation_severity ||
        s.savings_ratio != b.savings_ratio || s.mean_prediction != b.mean_prediction ||
        s.mean_limit != b.mean_limit ||
        s.tail.max_violation_streak != b.tail.max_violation_streak ||
        s.tail.severity_p999 != b.tail.severity_p999) {
      std::fprintf(stderr, "stream bench: stream diverged from batch (machine %d)\n", m);
      return;
    }
  }
  const uint64_t events = check.Metrics().TotalEvents();
  const uint64_t ticks = check.Metrics().TotalTicks();

  // Times one pool size; returns seconds per replay, or a negative value if
  // the lane's result diverged from the serial lane (integrity gate 2: at a
  // fixed shard count every number, including the shard-merged cell series,
  // must be bit-identical at any pool size).
  const auto time_replay = [&](int threads) {
    ThreadPool pool(threads);
    ReplayOptions run_options = options;
    run_options.parallel = threads > 1;
    run_options.pool = &pool;
    {
      StreamReplayer warm(cell, spec, run_options);
      warm.AdvanceToEnd();
      const SimResult lane = warm.Finish();
      for (int m = 0; m < cell.num_machines(); ++m) {
        const MachineMetrics& s = streamed.machines[m];
        const MachineMetrics& l = lane.machines[m];
        if (l.violations != s.violations ||
            l.mean_violation_severity != s.mean_violation_severity ||
            l.savings_ratio != s.savings_ratio || l.mean_prediction != s.mean_prediction) {
          return -1.0;
        }
      }
      if (lane.cell_savings_series != streamed.cell_savings_series) {
        return -1.0;
      }
    }
    int reps = 0;
    const auto start = std::chrono::steady_clock::now();
    double seconds = 0.0;
    do {
      StreamReplayer replayer(cell, spec, run_options);
      replayer.AdvanceToEnd();
      benchmark::DoNotOptimize(replayer.next_tick());
      ++reps;
      seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    } while (seconds < 0.5);
    return seconds / reps;
  };

  struct Lane {
    int threads = 1;
    double seconds = 0.0;
  };
  std::vector<Lane> lanes;
  for (const int threads : BenchThreadCounts()) {
    const double seconds = time_replay(threads);
    if (seconds < 0.0) {
      std::fprintf(stderr, "stream bench: threads=%d diverged from serial, not recording\n",
                   threads);
      return;
    }
    lanes.push_back({threads, seconds});
  }

  const std::string matrix = TodayUtc() + std::string("-") + (full ? "full" : "short");
  const double base_seconds = lanes[0].seconds;
  const std::string path = GetEnvString("CRF_BENCH_STREAM_FILE", "BENCH_stream.json");
  for (const Lane& lane : lanes) {
    const double speedup = base_seconds / lane.seconds;
    std::ostringstream entry;
    entry.precision(6);
    entry << "    {\n"
          << "      \"date\": \"" << TodayUtc() << "\",\n"
          << "      \"mode\": \"" << (full ? "full" : "short") << "\",\n"
          << "      \"matrix\": \"" << matrix << "\",\n"
          << "      \"threads\": " << lane.threads << ",\n"
          << "      \"parallel\": " << (lane.threads > 1 ? "true" : "false") << ",\n"
          << "      \"host_cores\": " << HostCores() << ",\n"
          << "      \"num_machines\": " << cell.num_machines() << ",\n"
          << "      \"num_intervals\": " << cell.num_intervals << ",\n"
          << "      \"num_tasks\": " << cell.num_tasks() << ",\n"
          << "      \"num_shards\": " << options.num_shards << ",\n"
          << "      \"events\": " << events << ",\n"
          << "      \"machine_ticks\": " << ticks << ",\n"
          << "      \"events_per_sec\": " << static_cast<double>(events) / lane.seconds
          << ",\n"
          << "      \"parallel_speedup\": " << speedup << "\n"
          << "    }";
    AppendTrackedBenchEntry(path, "crf-stream-bench-v2", entry.str());
    std::printf("stream bench (%s): threads=%d %.0f events/s (%.2fx) over %llu events -> %s\n",
                full ? "full" : "short", lane.threads,
                static_cast<double>(events) / lane.seconds, speedup,
                static_cast<unsigned long long>(events), path.c_str());
  }
}

// ---------------------------------------------------------------------------
// BENCH_serve.json: tracked network serve-tier throughput matrix.
//
// Controlled by $CRF_SERVE_BENCH: "off" skips, "short" (default) streams a
// 64-machine half-week cell over loopback, "full" a 512-machine week. One
// row lands per client-connection count in $CRF_SERVE_BENCH_CLIENTS
// (default "1,4,8"): a fresh server (push-mode StreamReplayer behind the
// CRFNET1 protocol) is stood up on an ephemeral loopback port and the load
// generator streams the whole trace from K connections. Every lane carries
// its own integrity gate — the loadgen's differential verify bit-compares
// the server's end state (per-machine prediction/limit-sum bits, roster
// hashes, cell sums) against an in-process replay — recorded per row as
// `bit_identical`; a lane that fails the gate is recorded as false and the
// check script rejects it. The record lands in $CRF_BENCH_SERVE_FILE
// (default ./BENCH_serve.json) as
// {"schema":"crf-serve-bench-v1","entries":[...]}; reruns append.

void RecordServeBench() {
  const std::string mode = GetEnvString("CRF_SERVE_BENCH", "short");
  if (mode == "off") {
    return;
  }
  const bool full = mode == "full";

  CellProfile profile = SimCellProfile('a');
  profile.num_machines = full ? 512 : 64;
  GeneratorOptions gen_options;
  gen_options.num_intervals = full ? kIntervalsPerWeek : kIntervalsPerWeek / 2;
  CellTrace cell = GenerateCellTrace(profile, gen_options, Rng(12));
  cell.FilterToServingTasks();
  const PredictorSpec spec = ProductionMaxSpec();

  // The server replays push-mode: parallelism comes from the client
  // connections driving disjoint shards, not from a replay pool. Latency
  // sampling is disabled on both sides (options must match bit-for-bit for
  // the differential verify).
  ReplayOptions replay_options;
  replay_options.parallel = false;
  replay_options.latency_sample_period = 0;

  std::vector<int> client_counts{1};
  {
    const std::string spec_text = GetEnvString("CRF_SERVE_BENCH_CLIENTS", "1,4,8");
    std::stringstream in(spec_text);
    std::string token;
    while (std::getline(in, token, ',')) {
      const int n = std::atoi(token.c_str());
      if (n >= 1) {
        client_counts.push_back(n);
      }
    }
    std::sort(client_counts.begin(), client_counts.end());
    client_counts.erase(std::unique(client_counts.begin(), client_counts.end()),
                        client_counts.end());
  }

  struct Lane {
    int clients = 1;
    LoadGenReport report;
  };
  std::vector<Lane> lanes;
  for (const int clients : client_counts) {
    StreamReplayer replayer(cell, spec, replay_options);
    OvercommitServer server(replayer, NetServerOptions{});
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "serve bench: cannot start server: %s\n", error.c_str());
      return;
    }
    LoadGenOptions options;
    options.port = server.port();
    options.client_threads = clients;
    options.verify_options = replay_options;
    Lane lane;
    lane.clients = clients;
    if (!RunLoadGen(cell, spec, options, &lane.report)) {
      std::fprintf(stderr, "serve bench: clients=%d failed: %s\n", clients,
                   lane.report.error.c_str());
      return;
    }
    server.Wait();
    lanes.push_back(std::move(lane));
  }

  const auto p99 = [](const std::vector<LoadGenOpLatency>& ops, const char* name) {
    for (const LoadGenOpLatency& op : ops) {
      if (op.op == name) {
        return op.p99_ns;
      }
    }
    return 0.0;
  };

  const std::string matrix = TodayUtc() + std::string("-") + (full ? "full" : "short");
  const std::string path = GetEnvString("CRF_BENCH_SERVE_FILE", "BENCH_serve.json");
  for (const Lane& lane : lanes) {
    const LoadGenReport& report = lane.report;
    std::ostringstream entry;
    entry.precision(6);
    entry << "    {\n"
          << "      \"date\": \"" << TodayUtc() << "\",\n"
          << "      \"mode\": \"" << (full ? "full" : "short") << "\",\n"
          << "      \"matrix\": \"" << matrix << "\",\n"
          << "      \"clients\": " << lane.clients << ",\n"
          << "      \"host_cores\": " << HostCores() << ",\n"
          << "      \"num_machines\": " << cell.num_machines() << ",\n"
          << "      \"num_intervals\": " << cell.num_intervals << ",\n"
          << "      \"num_shards\": " << replay_options.num_shards << ",\n"
          << "      \"events\": " << report.events_sent << ",\n"
          << "      \"events_per_sec\": " << report.events_per_sec << ",\n"
          << "      \"ingest_p99_ns\": " << p99(report.ops, "ingest-batch") << ",\n"
          << "      \"machine_query_p99_ns\": " << p99(report.ops, "machine-query") << ",\n"
          << "      \"admission_p99_ns\": " << p99(report.ops, "admission-check") << ",\n"
          << "      \"bit_identical\": " << (report.verified ? "true" : "false") << "\n"
          << "    }";
    AppendTrackedBenchEntry(path, "crf-serve-bench-v1", entry.str());
    std::printf("serve bench (%s): clients=%d %.0f events/s over %llu events,"
                " bit_identical=%s -> %s\n",
                full ? "full" : "short", lane.clients, report.events_per_sec,
                static_cast<unsigned long long>(report.events_sent),
                report.verified ? "true" : "false", path.c_str());
  }
}

}  // namespace
}  // namespace crf

// BENCHMARK_MAIN, plus JSON recording under $REPRO_OUT unless the caller
// already chose an output file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).starts_with("--benchmark_out")) {
      has_out = true;
    }
  }
  std::string out_flag;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    const std::string out_dir = crf::BenchOutputDir();
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    out_flag = "--benchmark_out=" + out_dir + "/perf_microbench.json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  crf::RecordClusterBench();
  crf::RecordSweepBench();
  crf::RecordTraceBench();
  crf::RecordStreamBench();
  crf::RecordServeBench();
  return 0;
}
