// Figure 3: the violation-rate / CPU-scheduling-latency link that justifies
// evaluating overcommit policies offline (Section 3.3). Five production-like
// cells run the borg-default predictor in the closed-loop cluster simulator
// for two weeks:
//   (a) per-machine oracle violation rate CDF per cell;
//   (b) per-task CPU scheduling latency CDF per cell (normalized);
//   (c) per-cell utilization CDF;
//   (d) 99%ile CPU scheduling latency vs violation rate, machines bucketed
//       by violation rate (width 0.005), with Spearman correlations and the
//       fitted slope (paper: 0.42 raw / 0.95 bucketed, slope ~14).

#include <cstdio>

#include "bench_common.h"
#include "crf/cluster/ab_experiment.h"
#include "crf/stats/correlation.h"
#include "crf/stats/histogram.h"
#include "crf/util/csv.h"

#include <algorithm>

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx =
      Init("fig03_violation_latency", "Fig 3: violation rate vs CPU scheduling latency");

  ClusterSimOptions options;
  options.num_intervals = 2 * kIntervalsPerWeek;
  options.warmup = 2 * kIntervalsPerDay;
  options.predictor = BorgDefaultSpec(0.9);
  ApplyClusterEngineEnv(options);

  std::vector<Ecdf> violation_cdfs;
  std::vector<Ecdf> latency_cdfs;
  std::vector<Ecdf> utilization_cdfs;
  std::vector<double> all_rates;
  std::vector<double> all_p99;

  for (int i = 1; i <= 5; ++i) {
    CellProfile profile = ProductionCellProfile(i);
    profile.num_machines = ScaledCount(profile.num_machines);
    const ClusterSimResult result = RunClusterSim(profile, options, ctx.rng().Fork(i));
    const std::vector<MachineOutcome> outcomes = AnalyzeMachines(result);

    Ecdf violation;
    Ecdf latency;
    for (const MachineOutcome& o : outcomes) {
      violation.Add(o.violation_rate);
      all_rates.push_back(o.violation_rate);
      all_p99.push_back(o.p99_latency);
    }
    // Per-task latency samples: machine latency weighted by resident tasks.
    // The streaming cursor walks each machine once with no per-machine
    // series allocation.
    MachineSeriesCursor resident(result.trace);
    for (int m = 0; m < result.trace.num_machines(); ++m) {
      resident.Reset(m);
      while (resident.Next()) {
        const Interval t = resident.interval();
        if (t < result.warmup || (t - result.warmup) % 8 != 0) {
          continue;
        }
        for (int32_t k = 0; k < resident.resident(); k += 4) {
          latency.Add(result.latencies.at(m, t));
        }
      }
    }
    // Cell-level utilization over intervals.
    Ecdf utilization;
    const double capacity = result.trace.TotalCapacity();
    for (Interval t = result.warmup; t < result.trace.num_intervals; ++t) {
      double usage = 0.0;
      for (const float u : result.demand_mean.IntervalRow(t)) {
        usage += u;
      }
      utilization.Add(usage / capacity);
    }
    std::printf("cell %d: %zu machines, placed %lld tasks, mean violation rate %.4f\n", i,
                static_cast<size_t>(result.trace.num_machines()), static_cast<long long>(result.tasks_placed),
                violation.mean());
    violation_cdfs.push_back(std::move(violation));
    latency_cdfs.push_back(std::move(latency));
    utilization_cdfs.push_back(std::move(utilization));
  }

  // Normalize latency CDFs to a common constant (the max observed p99.9).
  double norm = 0.0;
  for (const Ecdf& cdf : latency_cdfs) {
    norm = std::max(norm, cdf.Quantile(0.999));
  }
  std::vector<Ecdf> latency_normalized;
  for (Ecdf& cdf : latency_cdfs) {
    Ecdf scaled;
    for (const double v : cdf.sorted_samples()) {
      scaled.Add(v / norm);
    }
    latency_normalized.push_back(std::move(scaled));
  }

  auto report = [&ctx](const std::string& title, const std::vector<Ecdf>& cdfs,
                       const std::string& csv) {
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (size_t i = 0; i < cdfs.size(); ++i) {
      series.emplace_back("production cell " + std::to_string(i + 1), &cdfs[i]);
    }
    ReportCdfs(ctx, title, series, csv);
  };
  report("Fig 3(a): per-machine violation rate", violation_cdfs, "fig03a_violation_rate.csv");
  report("Fig 3(b): per-task CPU scheduling latency (normalized)", latency_normalized,
         "fig03b_latency.csv");
  report("Fig 3(c): cell utilization", utilization_cdfs, "fig03c_utilization.csv");

  // (d): bucketed correlation. Normalize p99 latency by the mean latency of
  // machines with zero violations, as in the paper.
  double zero_violation_latency = 0.0;
  int zero_count = 0;
  for (size_t i = 0; i < all_rates.size(); ++i) {
    if (all_rates[i] < 1e-9) {
      zero_violation_latency += all_p99[i];
      ++zero_count;
    }
  }
  zero_violation_latency = zero_count > 0 ? zero_violation_latency / zero_count : 1.0;

  BucketedStats buckets(0.0, 0.005, 40);
  std::vector<double> normalized_p99;
  for (size_t i = 0; i < all_rates.size(); ++i) {
    normalized_p99.push_back(all_p99[i] / zero_violation_latency);
    buckets.Add(all_rates[i], normalized_p99.back());
  }

  const int sparse = buckets.FirstSparseBucket(/*min_count=*/10);
  Table table({"violation-rate bucket", "machines", "mean p99 latency (norm)", "stddev"});
  std::vector<double> bucket_x;
  std::vector<double> bucket_y;
  for (int b = 0; b < sparse; ++b) {
    const RunningStats& stats = buckets.bucket(b);
    char label[48];
    std::snprintf(label, sizeof(label), "(%.3f, %.3f]", buckets.bucket_lower(b),
                  buckets.bucket_lower(b) + 0.005);
    table.AddRow(label, {static_cast<double>(stats.count()), stats.mean(), stats.stddev()});
    bucket_x.push_back(buckets.bucket_center(b));
    bucket_y.push_back(stats.mean());
  }
  std::printf("\nFig 3(d): p99 CPU scheduling latency vs violation rate (bucketed)\n");
  table.Print();

  const double raw_spearman = SpearmanCorrelation(all_rates, normalized_p99);
  const double bucketed_spearman = SpearmanCorrelation(bucket_x, bucket_y);
  const LinearFit fit = FitLine(bucket_x, bucket_y);
  std::printf(
      "\nSpearman correlation: raw %.2f (paper 0.42), bucketed means %.2f (paper 0.95)\n"
      "fitted slope of bucketed means: %.1f (paper 14.1: +1%% violation rate => +14%% p99)\n",
      raw_spearman, bucketed_spearman, fit.slope);

  CsvWriter csv(ctx.CsvPath("fig03d_bucketed.csv"),
                {"bucket_center", "count", "mean_p99", "stddev"});
  for (int b = 0; b < sparse; ++b) {
    const RunningStats& stats = buckets.bucket(b);
    csv.WriteRow({FormatDouble(buckets.bucket_center(b)), std::to_string(stats.count()),
                  FormatDouble(stats.mean()), FormatDouble(stats.stddev())});
  }
  return 0;
}

}  // namespace

int main() { return Main(); }
