// Shared scaffolding for the figure/table reproduction binaries.
//
// Every bench binary runs with no arguments (so `for b in build/bench/*; do
// $b; done` regenerates the whole evaluation), prints the series the paper
// figure plots as aligned tables, and writes the full-resolution curves as
// CSV under $REPRO_OUT (default ./bench_out). Workload sizes scale with
// $REPRO_SCALE and all randomness derives from $REPRO_SEED.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <string>
#include <utility>
#include <vector>

#include "crf/cluster/cell_sim.h"
#include "crf/stats/ecdf.h"
#include "crf/trace/generator.h"
#include "crf/util/env.h"
#include "crf/util/rng.h"
#include "crf/util/table.h"
#include "crf/util/time_grid.h"

namespace crf::bench {

struct Context {
  std::string name;
  uint64_t seed = 42;
  double scale = 1.0;
  std::string out_dir = "bench_out";

  Rng rng() const { return Rng(seed); }
  std::string CsvPath(const std::string& file) const { return out_dir + "/" + file; }
};

// Reads the environment, prints the bench banner, returns the context.
Context Init(const std::string& name, const std::string& what_it_reproduces);

// Applies $REPRO_CLUSTER_ENGINE to the cluster-sim options:
//   "sharded" (default) - parallel step loop + indexed placement;
//   "serial"            - serial step loop + linear-scan reference engine.
// Both produce byte-identical results for a given seed; the knob exists for
// A/B timing and for pinning down any future divergence in the field.
void ApplyClusterEngineEnv(ClusterSimOptions& options);

// Generates a cell from profile `letter` with machine count scaled by
// REPRO_SCALE, filtered to serving tasks (paper Section 5.1.2).
CellTrace MakeSimCell(const Context& ctx, char letter, Interval num_intervals,
                      bool rich_stats = false);

// The probability levels tabulated for every CDF.
const std::vector<double>& CdfProbes();

// Prints a table of CDF quantiles (one row per series) and writes the full
// curves to `csv_file`.
void ReportCdfs(const Context& ctx, const std::string& title,
                const std::vector<std::pair<std::string, const Ecdf*>>& series,
                const std::string& csv_file);

}  // namespace crf::bench

#endif  // BENCH_BENCH_COMMON_H_
