// Figure 1: the pooling effect.
//
// CDF of cell-level future peak usage computed two ways — as the sum of
// per-machine future peaks (the peak oracle per machine) and as the sum of
// per-task future peaks — both normalized to the cell's total limit at the
// same instant. The gap between the curves is the overcommit opportunity
// that per-task limit tuning (Autopilot) cannot reach; the paper reports the
// task-level sum ~50% above the machine-level sum at the median.

#include <cstdio>

#include "bench_common.h"
#include "crf/core/oracle.h"
#include "crf/trace/trace_stats.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("fig01_pooling", "Fig 1: task-level vs machine-level future peaks");
  const CellTrace cell = MakeSimCell(ctx, 'a', kIntervalsPerWeek);
  std::printf("cell a: %zu machines, %zu serving tasks, 1 week\n", static_cast<size_t>(cell.num_machines()),
              static_cast<size_t>(cell.num_tasks()));

  const Interval horizon = kIntervalsPerDay;
  const std::vector<double> limit = CellLimitSeries(cell);
  const std::vector<double> task_level = TaskLevelFuturePeakSum(cell, horizon);

  std::vector<double> machine_level(cell.num_intervals, 0.0);
  for (size_t m = 0; m < static_cast<size_t>(cell.num_machines()); ++m) {
    const std::vector<double> oracle =
        ComputePeakOracle(cell, static_cast<int>(m), horizon);
    for (Interval t = 0; t < cell.num_intervals; ++t) {
      machine_level[t] += oracle[t];
    }
  }

  Ecdf machine_cdf;
  Ecdf task_cdf;
  double ratio_sum = 0.0;
  int count = 0;
  for (Interval t = 0; t < cell.num_intervals; ++t) {
    if (limit[t] <= 1e-9) {
      continue;
    }
    machine_cdf.Add(machine_level[t] / limit[t]);
    task_cdf.Add(task_level[t] / limit[t]);
    ratio_sum += task_level[t] / machine_level[t];
    ++count;
  }

  ReportCdfs(ctx, "Normalized cell-level future peak",
             {{"sum(machine-level peak)", &machine_cdf}, {"sum(task-level peak)", &task_cdf}},
             "fig01_pooling.csv");

  std::printf(
      "\nmedian normalized peaks: machine-level %.3f, task-level %.3f\n"
      "mean task/machine peak ratio: %.3f (paper: ~1.5 at the median)\n",
      machine_cdf.Quantile(0.5), task_cdf.Quantile(0.5), ratio_sum / count);
  return 0;
}

}  // namespace

int main() { return Main(); }
