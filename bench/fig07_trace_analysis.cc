// Figure 7: the exploratory analysis that configures the oracle and the
// borg-default predictor.
//   (a) CDF of task runtime per cell (cells differ widely; e.g. cell c is
//       almost all short tasks, cell g has a long tail);
//   (b) the oracle-horizon study: how much a 3h-48h oracle under-estimates a
//       72h oracle (the 24h oracle is within 5% for >95% of instants, hence
//       the paper's 24h default);
//   (c) CDF of per-task usage-to-limit ratio (p95 < ~0.9 across cells,
//       justifying borg-default's phi = 0.9).

#include <cstdio>

#include "bench_common.h"
#include "crf/core/oracle.h"
#include "crf/trace/trace_stats.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

void RuntimesAndUsage(const Context& ctx) {
  std::vector<Ecdf> runtime_cdfs;
  std::vector<Ecdf> ratio_cdfs;
  runtime_cdfs.reserve(8);
  ratio_cdfs.reserve(8);
  for (char letter = 'a'; letter <= 'h'; ++letter) {
    const CellTrace cell = MakeSimCell(ctx, letter, kIntervalsPerWeek);
    runtime_cdfs.push_back(TaskRuntimeHoursCdf(cell));
    ratio_cdfs.push_back(UsageToLimitCdf(cell, /*stride=*/8));
  }
  std::vector<std::pair<std::string, const Ecdf*>> runtime_series;
  std::vector<std::pair<std::string, const Ecdf*>> ratio_series;
  for (int i = 0; i < 8; ++i) {
    const std::string name = std::string("cell_") + static_cast<char>('a' + i);
    runtime_series.emplace_back(name, &runtime_cdfs[i]);
    ratio_series.emplace_back(name, &ratio_cdfs[i]);
  }
  ReportCdfs(ctx, "Fig 7(a): task runtime (hours)", runtime_series, "fig07a_runtime.csv");
  std::printf("\nfraction of tasks under 24h:\n");
  for (int i = 0; i < 8; ++i) {
    std::printf("  cell_%c: %.3f\n", static_cast<char>('a' + i),
                runtime_cdfs[i].Evaluate(24.0));
  }
  ReportCdfs(ctx, "Fig 7(c): per-task usage-to-limit ratio", ratio_series,
             "fig07c_usage_to_limit.csv");
}

void OracleHorizons(const Context& ctx) {
  // Oracles of horizon h vs the 72h reference, over the first week of cell a.
  const CellTrace cell = MakeSimCell(ctx, 'a', kIntervalsPerWeek);
  const Interval reference = 72 * kIntervalsPerHour;
  const std::vector<int> horizons_hours = {3, 6, 12, 24, 48};

  std::vector<Ecdf> cdfs(horizons_hours.size());
  for (size_t m = 0; m < static_cast<size_t>(cell.num_machines()); ++m) {
    const std::vector<double> ref = ComputePeakOracle(cell, static_cast<int>(m), reference);
    for (size_t h = 0; h < horizons_hours.size(); ++h) {
      const std::vector<double> oracle = ComputePeakOracle(
          cell, static_cast<int>(m), horizons_hours[h] * kIntervalsPerHour);
      for (Interval t = 0; t < cell.num_intervals; t += 4) {
        if (ref[t] > 1e-9) {
          cdfs[h].Add((ref[t] - oracle[t]) / ref[t]);
        }
      }
    }
  }
  std::vector<std::pair<std::string, const Ecdf*>> series;
  for (size_t h = 0; h < horizons_hours.size(); ++h) {
    series.emplace_back("oracle_" + std::to_string(horizons_hours[h]) + "h", &cdfs[h]);
  }
  ReportCdfs(ctx, "Fig 7(b): oracle difference vs 72h oracle, normalized", series,
             "fig07b_oracle_horizon.csv");
  const size_t i24 = 3;
  std::printf("\nP[24h oracle within 5%% of 72h oracle] = %.3f (paper: > 0.95)\n",
              cdfs[i24].Evaluate(0.05));
}

int Main() {
  const Context ctx =
      Init("fig07_trace_analysis", "Fig 7: runtimes, oracle horizons, usage-to-limit");
  RuntimesAndUsage(ctx);
  OracleHorizons(ctx);
  return 0;
}

}  // namespace

int main() { return Main(); }
