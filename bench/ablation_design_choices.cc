// Ablations of design choices called out in DESIGN.md:
//   1. Exact arrival-filtered oracle vs the cheap total-usage oracle: how
//      much apparent risk the unfiltered ablation adds (it charges
//      predictors for tasks that had not arrived yet).
//   2. Packing policy (best-fit / worst-fit / random-fit) under the same
//      predictor: the paper argues the overcommit policy is orthogonal to
//      packing — savings should be insensitive while load balance shifts.

#include <cstdio>

#include "bench_common.h"
#include "crf/cluster/ab_experiment.h"
#include "crf/sim/simulator.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

void OracleAblation(const Context& ctx) {
  const CellTrace cell = MakeSimCell(ctx, 'a', kIntervalsPerWeek);
  Table table({"predictor", "violation rate (exact oracle)", "violation rate (unfiltered)"});
  for (const PredictorSpec& spec :
       {BorgDefaultSpec(0.9), RcLikeSpec(99.0), NSigmaSpec(5.0), SimulationMaxSpec()}) {
    SimOptions exact;
    SimOptions unfiltered;
    unfiltered.use_total_usage_oracle = true;
    const SimResult a = SimulateCell(cell, spec, exact);
    const SimResult b = SimulateCell(cell, spec, unfiltered);
    table.AddRow(a.predictor_name, {a.MeanViolationRate(), b.MeanViolationRate()});
  }
  std::printf("\nAblation 1: exact arrival-filtered oracle vs total-usage oracle\n");
  table.Print();
  std::printf("(The unfiltered oracle counts future arrivals against today's prediction,\n"
              "inflating apparent violation rates — the reason the exact oracle matters.)\n");
}

void PackingAblation(const Context& ctx) {
  CellProfile profile = ProductionCellProfile(2);
  profile.num_machines = ScaledCount(profile.num_machines);
  ClusterSimOptions options;
  options.num_intervals = kIntervalsPerWeek;
  options.warmup = 2 * kIntervalsPerDay;
  options.predictor = ProductionMaxSpec();
  ApplyClusterEngineEnv(options);

  Table table({"packing", "median savings", "median workload/cap", "p90 machine p99-util",
               "median machine p90 latency"});
  for (const PackingPolicy policy :
       {PackingPolicy::kBestFit, PackingPolicy::kWorstFit, PackingPolicy::kRandomFit}) {
    options.packing = policy;
    const ClusterSimResult result = RunClusterSim(profile, options, ctx.rng().Fork(7));
    const std::vector<ClusterSimResult> results{result};
    const GroupMetrics metrics = ComputeGroupMetrics(PackingPolicyName(policy), results);
    table.AddRow(PackingPolicyName(policy),
                 {metrics.relative_savings.Quantile(0.5),
                  metrics.normalized_workload.Quantile(0.5),
                  metrics.machine_p99_utilization.Quantile(0.9),
                  metrics.machine_p90_latency.Quantile(0.5)});
  }
  std::printf("\nAblation 2: packing policy under the max predictor (production cell 2)\n");
  table.Print();
  std::printf("(Savings depend on the predictor, not the packer — the paper's\n"
              "orthogonality claim; packing shifts the load-balance/latency columns.)\n");
}

int Main() {
  const Context ctx = Init("ablation_design_choices",
                           "oracle-variant and packing-policy ablations (DESIGN.md)");
  OracleAblation(ctx);
  PackingAblation(ctx);
  return 0;
}

}  // namespace

int main() { return Main(); }
