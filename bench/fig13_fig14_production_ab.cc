// Figures 13 and 14: the production A/B experiment (Section 6).
//
// Paired cluster simulations over the five production-like cells: the
// control group runs the tuned borg-default predictor (phi=0.9); the
// experimental group runs the deployed max predictor, max(n-sigma(3),
// rc-like(p80)) with 2h warm-up and 10h history. Both groups see the same
// arrival streams (same seeds).
//
// Fig 13: (a) violation rate, (b) violation severity, (c) relative savings,
//         (d) total allocations / capacity, (e) total workload / capacity.
// Fig 14: (a) per-task CPU scheduling latency, (b) per-machine p90 latency,
//         (c) median, (d) mean, (e) p99 machine utilization.
//
// Expected shape (paper): exp saves >16% vs control ~10-12%; exp hosts ~2%
// more allocated limit and ~6% more used CPU; exp latency is equal or
// better, with its *hottest* machines less utilized (better load balance).

#include <cstdio>

#include "bench_common.h"
#include "crf/cluster/ab_experiment.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("fig13_fig14_production_ab",
                           "Figs 13-14: production A/B, borg-default vs max predictor");

  ClusterSimOptions options;
  // The paper runs 32 days; two weeks keeps the default bench under a
  // minute while covering many diurnal cycles (REPRO_SCALE grows machines).
  options.num_intervals = 2 * kIntervalsPerWeek;
  options.warmup = 2 * kIntervalsPerDay;
  ApplyClusterEngineEnv(options);

  std::vector<CellProfile> profiles;
  for (int i = 1; i <= 5; ++i) {
    CellProfile profile = ProductionCellProfile(i);
    profile.num_machines = ScaledCount(profile.num_machines);
    // Mild demand pressure: the paper's cells are not saturated — the extra
    // capacity overcommit frees shows up mostly as savings, and only invites
    // a few percent more workload (Fig 13(d)(e)).
    profile.tasks_per_machine *= 0.72;
    profiles.push_back(profile);
  }

  // The deployed configuration is max(n-sigma(3), rc-like(p80)) (Section
  // 6.1). The paper tuned those knobs so the max predictor matches
  // borg-default's production risk profile; our synthetic workload has more
  // short-horizon variance than Google's, so the matching configuration here
  // is n = 2 (see EXPERIMENTS.md for the calibration note).
  const AbExperimentResult ab =
      RunAbExperiment(profiles, BorgDefaultSpec(0.9),
                      MaxSpec({NSigmaSpec(2.0), RcLikeSpec(80.0)}), options,
                      ctx.rng().Fork(0xab));

  auto pair = [&](const Ecdf& control,
                  const Ecdf& exp) -> std::vector<std::pair<std::string, const Ecdf*>> {
    return {{"control", &control}, {"exp", &exp}};
  };

  ReportCdfs(ctx, "Fig 13(a): per-machine violation rate",
             pair(ab.control.violation_rate, ab.experiment.violation_rate),
             "fig13a_violation_rate.csv");
  ReportCdfs(ctx, "Fig 13(b): violation severity",
             pair(ab.control.violation_severity, ab.experiment.violation_severity),
             "fig13b_violation_severity.csv");
  // Tail companions to Fig 13(b): the per-machine p999 severity and longest
  // violation streak (crf/risk). A mean-vs-tail ranking flip between control
  // and exp shows up as the curves crossing here but not in 13(b).
  ReportCdfs(ctx, "Fig 13(b'): violation severity p999 (per machine)",
             pair(ab.control.severity_p999, ab.experiment.severity_p999),
             "fig13b_severity_p999.csv");
  ReportCdfs(ctx, "Fig 13(b''): max violation streak (intervals, per machine)",
             pair(ab.control.max_violation_streak, ab.experiment.max_violation_streak),
             "fig13b_max_streak.csv");
  ReportCdfs(ctx, "Fig 13(c): relative savings (per interval)",
             pair(ab.control.relative_savings, ab.experiment.relative_savings),
             "fig13c_savings.csv");
  ReportCdfs(ctx, "Fig 13(d): normalized allocations (limit / capacity)",
             pair(ab.control.normalized_allocation, ab.experiment.normalized_allocation),
             "fig13d_allocations.csv");
  ReportCdfs(ctx, "Fig 13(e): normalized workload (usage / capacity)",
             pair(ab.control.normalized_workload, ab.experiment.normalized_workload),
             "fig13e_workload.csv");

  // Fig 14(a,b): latency, normalized to the control group's p99.9.
  const double norm = ab.control.task_latency.Quantile(0.999);
  auto normalized = [norm](const Ecdf& cdf) {
    Ecdf out;
    for (const double v : cdf.sorted_samples()) {
      out.Add(v / norm);
    }
    return out;
  };
  const Ecdf control_task_latency = normalized(ab.control.task_latency);
  const Ecdf exp_task_latency = normalized(ab.experiment.task_latency);
  const Ecdf control_p90 = normalized(ab.control.machine_p90_latency);
  const Ecdf exp_p90 = normalized(ab.experiment.machine_p90_latency);

  ReportCdfs(ctx, "Fig 14(a): per-task CPU scheduling latency (normalized)",
             pair(control_task_latency, exp_task_latency), "fig14a_task_latency.csv");
  ReportCdfs(ctx, "Fig 14(b): per-machine p90 CPU scheduling latency (normalized)",
             pair(control_p90, exp_p90), "fig14b_machine_latency.csv");
  ReportCdfs(ctx, "Fig 14(c): per-machine median utilization",
             pair(ab.control.machine_p50_utilization, ab.experiment.machine_p50_utilization),
             "fig14c_median_util.csv");
  ReportCdfs(ctx, "Fig 14(d): per-machine mean utilization",
             pair(ab.control.machine_mean_utilization, ab.experiment.machine_mean_utilization),
             "fig14d_mean_util.csv");
  ReportCdfs(ctx, "Fig 14(e): per-machine p99 utilization",
             pair(ab.control.machine_p99_utilization, ab.experiment.machine_p99_utilization),
             "fig14e_p99_util.csv");

  Table summary({"metric", "control", "exp", "paper control", "paper exp"});
  summary.AddRow("median relative savings",
                 {ab.control.relative_savings.Quantile(0.5),
                  ab.experiment.relative_savings.Quantile(0.5), 0.11, 0.165});
  summary.AddRow("median allocations/capacity",
                 {ab.control.normalized_allocation.Quantile(0.5),
                  ab.experiment.normalized_allocation.Quantile(0.5), 0.88, 0.90});
  summary.AddRow("median workload/capacity",
                 {ab.control.normalized_workload.Quantile(0.5),
                  ab.experiment.normalized_workload.Quantile(0.5), 0.49, 0.52});
  summary.AddRow("p90 task latency (norm)",
                 {control_task_latency.Quantile(0.9), exp_task_latency.Quantile(0.9), 1.0,
                  0.95});
  summary.AddRow("median machine mean-util",
                 {ab.control.machine_mean_utilization.Quantile(0.5),
                  ab.experiment.machine_mean_utilization.Quantile(0.5), 0.45, 0.46});
  summary.AddRow("p99-util of hottest machines (p90 over machines)",
                 {ab.control.machine_p99_utilization.Quantile(0.9),
                  ab.experiment.machine_p99_utilization.Quantile(0.9), 0.82, 0.80});
  std::printf("\nA/B summary (paper values approximate, read from figures)\n");
  summary.Print();
  std::printf("\ntasks placed: control %lld (timed out %lld), exp %lld (timed out %lld)\n",
              static_cast<long long>(ab.control.tasks_placed),
              static_cast<long long>(ab.control.tasks_timed_out),
              static_cast<long long>(ab.experiment.tasks_placed),
              static_cast<long long>(ab.experiment.tasks_timed_out));
  return 0;
}

}  // namespace

int main() { return Main(); }
