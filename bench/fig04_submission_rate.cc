// Figure 4: CDF of task submission rate (tasks per 5-minute interval) for
// each of the eight trace cells over the first week. Demonstrates the
// arrival pressure a centralized scheduler faces — the reason predictors run
// in the node agents rather than in the scheduler (Section 4).

#include <cstdio>

#include "bench_common.h"
#include "crf/trace/trace_stats.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx =
      Init("fig04_submission_rate", "Fig 4: task submission rate CDFs, cells a-h");

  std::vector<Ecdf> cdfs;
  std::vector<std::pair<std::string, const Ecdf*>> series;
  cdfs.reserve(8);
  for (char letter = 'a'; letter <= 'h'; ++letter) {
    const CellTrace cell = MakeSimCell(ctx, letter, kIntervalsPerWeek);
    Ecdf cdf;
    for (const int64_t arrivals : SubmissionRateSeries(cell)) {
      cdf.Add(static_cast<double>(arrivals));
    }
    std::printf("cell %c: %zu machines, %zu tasks, mean %.1f tasks/5min\n", letter,
                static_cast<size_t>(cell.num_machines()), static_cast<size_t>(cell.num_tasks()), cdf.mean());
    cdfs.push_back(std::move(cdf));
  }
  for (size_t i = 0; i < cdfs.size(); ++i) {
    series.emplace_back(std::string("cell_") + static_cast<char>('a' + i), &cdfs[i]);
  }

  ReportCdfs(ctx, "Tasks submitted per 5-minute interval", series,
             "fig04_submission_rate.csv");
  std::printf("\n(Machine counts are scaled by ~1/125 vs the paper; absolute rates scale "
              "accordingly, the cell ordering and CDF shapes are the reproduction target.)\n");
  return 0;
}

}  // namespace

int main() { return Main(); }
