// Figure 10: head-to-head predictor comparison on cell a, week 1, with the
// paper's tuned parameters (N-sigma n=5, RC-like p99, 2h warm-up, 10h
// history, borg-default phi=0.9):
//   (a) per-machine violation rate    (b) violation severity
//   (c) per-machine savings           (d) per-cell savings
//
// Expected shape: borg-default and RC-like carry the most violation risk,
// N-sigma much less, max(N-sigma, RC-like) least; RC-like saves the most,
// borg-default exactly 10%, N-sigma/max the least (the pointwise max of
// predictions can only lower savings versus its components).

#include <cstdio>
#include <utility>

#include "bench_common.h"
#include "crf/sim/simulator.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx =
      Init("fig10_predictor_comparison", "Fig 10: all predictors on cell a, week 1");
  const CellTrace cell = MakeSimCell(ctx, 'a', kIntervalsPerWeek);
  std::printf("cell a: %zu machines, %zu serving tasks, 1 week\n", static_cast<size_t>(cell.num_machines()),
              static_cast<size_t>(cell.num_tasks()));

  // All five predictors in one SimulateCellMulti trace pass: the max spec's
  // components alias the standalone N-sigma and RC-like sweep points inside
  // the shared bank, so the comparison costs one walk, not five.
  const std::vector<PredictorSpec> specs = {
      BorgDefaultSpec(0.9),     RcLikeSpec(99.0),    AutopilotSpec(98.0, 1.10),
      NSigmaSpec(5.0),          SimulationMaxSpec(),
  };
  const char* spec_labels[] = {"borg-default", "RC-like", "autopilot", "N-sigma",
                               "max(N-sigma,RC-like)"};

  OracleCache oracle_cache;
  SimOptions sim_options;
  sim_options.oracle_cache = &oracle_cache;
  std::vector<SimResult> results = SimulateCellMulti(cell, specs, sim_options);

  struct Entry {
    std::string label;
    SimResult result;
  };
  std::vector<Entry> entries;
  for (size_t i = 0; i < results.size(); ++i) {
    entries.push_back({spec_labels[i], std::move(results[i])});
  }

  auto report = [&](const std::string& title, const std::string& csv,
                    Ecdf (SimResult::*extract)() const) {
    std::vector<Ecdf> cdfs;
    cdfs.reserve(entries.size());
    for (const Entry& e : entries) {
      cdfs.push_back((e.result.*extract)());
    }
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (size_t i = 0; i < entries.size(); ++i) {
      series.emplace_back(entries[i].label, &cdfs[i]);
    }
    ReportCdfs(ctx, title, series, csv);
  };

  report("Fig 10(a): per-machine violation rate", "fig10a_violation_rate.csv",
         &SimResult::ViolationRateCdf);
  report("Fig 10(b): per-machine violation severity", "fig10b_violation_severity.csv",
         &SimResult::ViolationSeverityCdf);
  report("Fig 10(c): per-machine savings", "fig10c_machine_savings.csv",
         &SimResult::MachineSavingsCdf);
  report("Fig 10(d): per-cell savings", "fig10d_cell_savings.csv",
         &SimResult::CellSavingsCdf);

  Table summary({"predictor", "mean violation rate", "mean cell savings"});
  for (const Entry& e : entries) {
    summary.AddRow(e.label, {e.result.MeanViolationRate(), e.result.MeanCellSavings()});
  }
  std::printf("\nsummary\n");
  summary.Print();
  return 0;
}

}  // namespace

int main() { return Main(); }
