#include "bench_common.h"

#include <cstdio>

#include "crf/util/csv.h"

namespace crf::bench {

Context Init(const std::string& name, const std::string& what_it_reproduces) {
  Context ctx;
  ctx.name = name;
  ctx.seed = BenchSeed();
  ctx.scale = BenchScale();
  ctx.out_dir = BenchOutputDir();
  EnsureDirectory(ctx.out_dir);
  PrintBanner(name + " — " + what_it_reproduces);
  std::printf("seed=%llu scale=%.2f out=%s\n", static_cast<unsigned long long>(ctx.seed),
              ctx.scale, ctx.out_dir.c_str());
  return ctx;
}

void ApplyClusterEngineEnv(ClusterSimOptions& options) {
  const std::string engine = GetEnvString("REPRO_CLUSTER_ENGINE", "sharded");
  if (engine == "serial") {
    options.parallel = false;
    options.placement = PlacementEngine::kLinearScan;
  } else {
    if (engine != "sharded") {
      std::printf("REPRO_CLUSTER_ENGINE=%s unknown, using \"sharded\"\n", engine.c_str());
    }
    options.parallel = true;
    options.placement = PlacementEngine::kIndexed;
  }
}

CellTrace MakeSimCell(const Context& ctx, char letter, Interval num_intervals,
                      bool rich_stats) {
  CellProfile profile = SimCellProfile(letter);
  profile.num_machines = ScaledCount(profile.num_machines);
  GeneratorOptions options;
  options.num_intervals = num_intervals;
  options.rich_stats = rich_stats;
  CellTrace cell = GenerateCellTrace(profile, options, ctx.rng().Fork(letter));
  cell.FilterToServingTasks();
  return cell;
}

const std::vector<double>& CdfProbes() {
  static const std::vector<double> probes = {0.01, 0.05, 0.1,  0.25, 0.5,
                                             0.75, 0.9,  0.95, 0.99, 1.0};
  return probes;
}

void ReportCdfs(const Context& ctx, const std::string& title,
                const std::vector<std::pair<std::string, const Ecdf*>>& series,
                const std::string& csv_file) {
  std::vector<std::string> header{"series"};
  for (const double p : CdfProbes()) {
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "p%g", p * 100.0);
    header.emplace_back(buffer);
  }
  Table table(std::move(header));
  for (const auto& [name, ecdf] : series) {
    std::vector<double> row;
    for (const double p : CdfProbes()) {
      row.push_back(ecdf->empty() ? 0.0 : ecdf->Quantile(p));
    }
    table.AddRow(name, row);
  }
  std::printf("\n%s (quantiles of the plotted distribution)\n", title.c_str());
  table.Print();
  WriteCdfsCsv(ctx.CsvPath(csv_file), series);
  std::printf("full curves -> %s\n", ctx.CsvPath(csv_file).c_str());
}

}  // namespace crf::bench
