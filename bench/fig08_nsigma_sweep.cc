// Figure 8: N-sigma parameter sweep on cell a, week 1.
//   (a) per-machine violation-rate CDFs for n in {2, 3, 5, 10};
//   (b) cell-level savings (1 - predicted peak / total limit) vs n;
//   (c) violation-rate CDFs for warm-up in {1h, 2h, 3h} (weak effect);
//   (d) violation-rate CDFs for history in {2h, 5h, 10h} (strong effect).

#include <cstdio>

#include "bench_common.h"
#include "crf/sim/simulator.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("fig08_nsigma_sweep", "Fig 8: N-sigma predictor parameter sweep");
  const CellTrace cell = MakeSimCell(ctx, 'a', kIntervalsPerWeek);
  std::printf("cell a: %zu machines, %zu serving tasks, 1 week\n", cell.machines.size(),
              cell.tasks.size());

  // The peak oracle depends only on (cell, machine, horizon) — share one
  // memo across every sweep point so it is computed exactly once.
  OracleCache oracle_cache;
  SimOptions sim_options;
  sim_options.oracle_cache = &oracle_cache;

  // (a)+(b): sweep n with 2h warm-up, 10h history.
  {
    std::vector<Ecdf> cdfs;
    std::vector<double> savings;
    std::vector<std::string> labels;
    for (const double n : {2.0, 3.0, 5.0, 10.0}) {
      const SimResult result = SimulateCell(cell, NSigmaSpec(n), sim_options);
      cdfs.push_back(result.ViolationRateCdf());
      savings.push_back(result.MeanCellSavings());
      labels.push_back("n=" + std::to_string(static_cast<int>(n)));
    }
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (size_t i = 0; i < cdfs.size(); ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 8(a): per-machine violation rate vs n", series,
               "fig08a_violation_vs_n.csv");

    Table table({"n", "savings: 1 - predicted/limit"});
    for (size_t i = 0; i < savings.size(); ++i) {
      table.AddRow(labels[i], {savings[i]});
    }
    std::printf("\nFig 8(b): cell-level savings vs n\n");
    table.Print();
  }

  // (c): warm-up sweep at n=5, 10h history.
  {
    std::vector<Ecdf> cdfs;
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (const int hours : {1, 2, 3}) {
      const SimResult result =
          SimulateCell(cell, NSigmaSpec(5.0, hours * kIntervalsPerHour), sim_options);
      cdfs.push_back(result.ViolationRateCdf());
    }
    const char* labels[] = {"warm-up=1h", "warm-up=2h", "warm-up=3h"};
    for (size_t i = 0; i < cdfs.size(); ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 8(c): violation rate vs warm-up (n=5, 10h history)", series,
               "fig08c_violation_vs_warmup.csv");
  }

  // (d): history sweep at n=5, 2h warm-up.
  {
    std::vector<Ecdf> cdfs;
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (const int hours : {2, 5, 10}) {
      const SimResult result = SimulateCell(
          cell, NSigmaSpec(5.0, 2 * kIntervalsPerHour, hours * kIntervalsPerHour),
          sim_options);
      cdfs.push_back(result.ViolationRateCdf());
    }
    const char* labels[] = {"history=2h", "history=5h", "history=10h"};
    for (size_t i = 0; i < cdfs.size(); ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 8(d): violation rate vs history (n=5, 2h warm-up)", series,
               "fig08d_violation_vs_history.csv");
  }
  return 0;
}

}  // namespace

int main() { return Main(); }
