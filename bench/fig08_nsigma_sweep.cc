// Figure 8: N-sigma parameter sweep on cell a, week 1.
//   (a) per-machine violation-rate CDFs for n in {2, 3, 5, 10};
//   (b) cell-level savings (1 - predicted peak / total limit) vs n;
//   (c) violation-rate CDFs for warm-up in {1h, 2h, 3h} (weak effect);
//   (d) violation-rate CDFs for history in {2h, 5h, 10h} (strong effect).
//
// The whole 10-point grid runs through SimulateCellMulti in a single trace
// pass: the sweep bank shares the aggregate-usage moments across every n
// (panels a+b differ only in the multiplier) and the oracle cache shares the
// peak oracle across the warm-up/history variants.

#include <cstdio>

#include "bench_common.h"
#include "crf/sim/simulator.h"

namespace {

using namespace crf;        // NOLINT
using namespace crf::bench; // NOLINT

int Main() {
  const Context ctx = Init("fig08_nsigma_sweep", "Fig 8: N-sigma predictor parameter sweep");
  const CellTrace cell = MakeSimCell(ctx, 'a', kIntervalsPerWeek);
  std::printf("cell a: %zu machines, %zu serving tasks, 1 week\n", static_cast<size_t>(cell.num_machines()),
              static_cast<size_t>(cell.num_tasks()));

  // The full grid, one SimulateCellMulti call:
  //   [0..3]  n in {2, 3, 5, 10} with 2h warm-up, 10h history  (a)+(b)
  //   [4..6]  warm-up in {1h, 2h, 3h} at n=5, 10h history      (c)
  //   [7..9]  history in {2h, 5h, 10h} at n=5, 2h warm-up      (d)
  std::vector<PredictorSpec> specs;
  for (const double n : {2.0, 3.0, 5.0, 10.0}) {
    specs.push_back(NSigmaSpec(n));
  }
  for (const int hours : {1, 2, 3}) {
    specs.push_back(NSigmaSpec(5.0, hours * kIntervalsPerHour));
  }
  for (const int hours : {2, 5, 10}) {
    specs.push_back(NSigmaSpec(5.0, 2 * kIntervalsPerHour, hours * kIntervalsPerHour));
  }

  OracleCache oracle_cache;
  SimOptions sim_options;
  sim_options.oracle_cache = &oracle_cache;
  const std::vector<SimResult> results = SimulateCellMulti(cell, specs, sim_options);

  // (a)+(b): violation-rate CDFs and cell-level savings vs n.
  {
    const char* labels[] = {"n=2", "n=3", "n=5", "n=10"};
    std::vector<Ecdf> cdfs;
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (int i = 0; i < 4; ++i) {
      cdfs.push_back(results[i].ViolationRateCdf());
    }
    for (int i = 0; i < 4; ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 8(a): per-machine violation rate vs n", series,
               "fig08a_violation_vs_n.csv");

    Table table({"n", "savings: 1 - predicted/limit"});
    for (int i = 0; i < 4; ++i) {
      table.AddRow(labels[i], {results[i].MeanCellSavings()});
    }
    std::printf("\nFig 8(b): cell-level savings vs n\n");
    table.Print();
  }

  // (c): warm-up sweep at n=5, 10h history.
  {
    const char* labels[] = {"warm-up=1h", "warm-up=2h", "warm-up=3h"};
    std::vector<Ecdf> cdfs;
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (int i = 0; i < 3; ++i) {
      cdfs.push_back(results[4 + i].ViolationRateCdf());
    }
    for (int i = 0; i < 3; ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 8(c): violation rate vs warm-up (n=5, 10h history)", series,
               "fig08c_violation_vs_warmup.csv");
  }

  // (d): history sweep at n=5, 2h warm-up.
  {
    const char* labels[] = {"history=2h", "history=5h", "history=10h"};
    std::vector<Ecdf> cdfs;
    std::vector<std::pair<std::string, const Ecdf*>> series;
    for (int i = 0; i < 3; ++i) {
      cdfs.push_back(results[7 + i].ViolationRateCdf());
    }
    for (int i = 0; i < 3; ++i) {
      series.emplace_back(labels[i], &cdfs[i]);
    }
    ReportCdfs(ctx, "Fig 8(d): violation rate vs history (n=5, 2h warm-up)", series,
               "fig08d_violation_vs_history.csv");
  }
  return 0;
}

}  // namespace

int main() { return Main(); }
