# Empty compiler generated dependencies file for paper_properties_test.
# This may be replaced when dependencies are built.
