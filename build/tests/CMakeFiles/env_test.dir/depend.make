# Empty dependencies file for env_test.
# This may be replaced when dependencies are built.
