file(REMOVE_RECURSE
  "CMakeFiles/env_test.dir/env_test.cc.o"
  "CMakeFiles/env_test.dir/env_test.cc.o.d"
  "env_test"
  "env_test.pdb"
  "env_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
