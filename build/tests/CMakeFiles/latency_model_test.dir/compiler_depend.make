# Empty compiler generated dependencies file for latency_model_test.
# This may be replaced when dependencies are built.
