file(REMOVE_RECURSE
  "CMakeFiles/latency_model_test.dir/latency_model_test.cc.o"
  "CMakeFiles/latency_model_test.dir/latency_model_test.cc.o.d"
  "latency_model_test"
  "latency_model_test.pdb"
  "latency_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
