file(REMOVE_RECURSE
  "CMakeFiles/workload_model_test.dir/workload_model_test.cc.o"
  "CMakeFiles/workload_model_test.dir/workload_model_test.cc.o.d"
  "workload_model_test"
  "workload_model_test.pdb"
  "workload_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
