file(REMOVE_RECURSE
  "CMakeFiles/window_max_test.dir/window_max_test.cc.o"
  "CMakeFiles/window_max_test.dir/window_max_test.cc.o.d"
  "window_max_test"
  "window_max_test.pdb"
  "window_max_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_max_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
