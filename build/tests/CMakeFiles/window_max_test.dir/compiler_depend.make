# Empty compiler generated dependencies file for window_max_test.
# This may be replaced when dependencies are built.
