# Empty compiler generated dependencies file for ab_experiment_test.
# This may be replaced when dependencies are built.
