file(REMOVE_RECURSE
  "CMakeFiles/ab_experiment_test.dir/ab_experiment_test.cc.o"
  "CMakeFiles/ab_experiment_test.dir/ab_experiment_test.cc.o.d"
  "ab_experiment_test"
  "ab_experiment_test.pdb"
  "ab_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ab_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
