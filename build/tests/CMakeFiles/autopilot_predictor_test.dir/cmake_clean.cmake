file(REMOVE_RECURSE
  "CMakeFiles/autopilot_predictor_test.dir/autopilot_predictor_test.cc.o"
  "CMakeFiles/autopilot_predictor_test.dir/autopilot_predictor_test.cc.o.d"
  "autopilot_predictor_test"
  "autopilot_predictor_test.pdb"
  "autopilot_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopilot_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
