# Empty dependencies file for autopilot_predictor_test.
# This may be replaced when dependencies are built.
