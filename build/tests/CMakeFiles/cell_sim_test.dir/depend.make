# Empty dependencies file for cell_sim_test.
# This may be replaced when dependencies are built.
