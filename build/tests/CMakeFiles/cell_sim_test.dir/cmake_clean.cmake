file(REMOVE_RECURSE
  "CMakeFiles/cell_sim_test.dir/cell_sim_test.cc.o"
  "CMakeFiles/cell_sim_test.dir/cell_sim_test.cc.o.d"
  "cell_sim_test"
  "cell_sim_test.pdb"
  "cell_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
