# Empty compiler generated dependencies file for predictors_test.
# This may be replaced when dependencies are built.
