file(REMOVE_RECURSE
  "CMakeFiles/predictors_test.dir/predictors_test.cc.o"
  "CMakeFiles/predictors_test.dir/predictors_test.cc.o.d"
  "predictors_test"
  "predictors_test.pdb"
  "predictors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
