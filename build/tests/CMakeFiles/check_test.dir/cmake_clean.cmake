file(REMOVE_RECURSE
  "CMakeFiles/check_test.dir/check_test.cc.o"
  "CMakeFiles/check_test.dir/check_test.cc.o.d"
  "check_test"
  "check_test.pdb"
  "check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
