# Empty dependencies file for predictor_factory_test.
# This may be replaced when dependencies are built.
