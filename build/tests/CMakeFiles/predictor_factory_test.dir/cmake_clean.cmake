file(REMOVE_RECURSE
  "CMakeFiles/predictor_factory_test.dir/predictor_factory_test.cc.o"
  "CMakeFiles/predictor_factory_test.dir/predictor_factory_test.cc.o.d"
  "predictor_factory_test"
  "predictor_factory_test.pdb"
  "predictor_factory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_factory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
