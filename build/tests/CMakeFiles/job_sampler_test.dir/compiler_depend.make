# Empty compiler generated dependencies file for job_sampler_test.
# This may be replaced when dependencies are built.
