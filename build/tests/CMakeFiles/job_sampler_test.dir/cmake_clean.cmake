file(REMOVE_RECURSE
  "CMakeFiles/job_sampler_test.dir/job_sampler_test.cc.o"
  "CMakeFiles/job_sampler_test.dir/job_sampler_test.cc.o.d"
  "job_sampler_test"
  "job_sampler_test.pdb"
  "job_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
