file(REMOVE_RECURSE
  "CMakeFiles/cell_profile_test.dir/cell_profile_test.cc.o"
  "CMakeFiles/cell_profile_test.dir/cell_profile_test.cc.o.d"
  "cell_profile_test"
  "cell_profile_test.pdb"
  "cell_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
