# Empty compiler generated dependencies file for cell_profile_test.
# This may be replaced when dependencies are built.
