file(REMOVE_RECURSE
  "CMakeFiles/task_history_test.dir/task_history_test.cc.o"
  "CMakeFiles/task_history_test.dir/task_history_test.cc.o.d"
  "task_history_test"
  "task_history_test.pdb"
  "task_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
