# Empty compiler generated dependencies file for task_history_test.
# This may be replaced when dependencies are built.
