# Empty dependencies file for correlation_test.
# This may be replaced when dependencies are built.
