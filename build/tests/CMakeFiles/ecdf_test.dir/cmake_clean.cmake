file(REMOVE_RECURSE
  "CMakeFiles/ecdf_test.dir/ecdf_test.cc.o"
  "CMakeFiles/ecdf_test.dir/ecdf_test.cc.o.d"
  "ecdf_test"
  "ecdf_test.pdb"
  "ecdf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
