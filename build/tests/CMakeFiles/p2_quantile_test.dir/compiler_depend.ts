# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for p2_quantile_test.
