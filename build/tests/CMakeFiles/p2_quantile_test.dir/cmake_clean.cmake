file(REMOVE_RECURSE
  "CMakeFiles/p2_quantile_test.dir/p2_quantile_test.cc.o"
  "CMakeFiles/p2_quantile_test.dir/p2_quantile_test.cc.o.d"
  "p2_quantile_test"
  "p2_quantile_test.pdb"
  "p2_quantile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2_quantile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
