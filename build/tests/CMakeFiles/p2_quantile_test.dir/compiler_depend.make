# Empty compiler generated dependencies file for p2_quantile_test.
# This may be replaced when dependencies are built.
