file(REMOVE_RECURSE
  "CMakeFiles/percentile_test.dir/percentile_test.cc.o"
  "CMakeFiles/percentile_test.dir/percentile_test.cc.o.d"
  "percentile_test"
  "percentile_test.pdb"
  "percentile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/percentile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
