# Empty compiler generated dependencies file for percentile_test.
# This may be replaced when dependencies are built.
