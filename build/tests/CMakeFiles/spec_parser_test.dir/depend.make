# Empty dependencies file for spec_parser_test.
# This may be replaced when dependencies are built.
