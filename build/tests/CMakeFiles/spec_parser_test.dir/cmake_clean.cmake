file(REMOVE_RECURSE
  "CMakeFiles/spec_parser_test.dir/spec_parser_test.cc.o"
  "CMakeFiles/spec_parser_test.dir/spec_parser_test.cc.o.d"
  "spec_parser_test"
  "spec_parser_test.pdb"
  "spec_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
