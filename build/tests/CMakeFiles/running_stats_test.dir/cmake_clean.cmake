file(REMOVE_RECURSE
  "CMakeFiles/running_stats_test.dir/running_stats_test.cc.o"
  "CMakeFiles/running_stats_test.dir/running_stats_test.cc.o.d"
  "running_stats_test"
  "running_stats_test.pdb"
  "running_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/running_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
