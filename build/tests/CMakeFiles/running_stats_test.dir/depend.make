# Empty dependencies file for running_stats_test.
# This may be replaced when dependencies are built.
