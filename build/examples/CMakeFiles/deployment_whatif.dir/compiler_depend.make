# Empty compiler generated dependencies file for deployment_whatif.
# This may be replaced when dependencies are built.
