file(REMOVE_RECURSE
  "CMakeFiles/deployment_whatif.dir/deployment_whatif.cc.o"
  "CMakeFiles/deployment_whatif.dir/deployment_whatif.cc.o.d"
  "deployment_whatif"
  "deployment_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
