# Empty dependencies file for custom_predictor.
# This may be replaced when dependencies are built.
