file(REMOVE_RECURSE
  "CMakeFiles/custom_predictor.dir/custom_predictor.cc.o"
  "CMakeFiles/custom_predictor.dir/custom_predictor.cc.o.d"
  "custom_predictor"
  "custom_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
