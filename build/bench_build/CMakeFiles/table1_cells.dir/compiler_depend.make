# Empty compiler generated dependencies file for table1_cells.
# This may be replaced when dependencies are built.
