file(REMOVE_RECURSE
  "../bench/table1_cells"
  "../bench/table1_cells.pdb"
  "CMakeFiles/table1_cells.dir/table1_cells.cc.o"
  "CMakeFiles/table1_cells.dir/table1_cells.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
