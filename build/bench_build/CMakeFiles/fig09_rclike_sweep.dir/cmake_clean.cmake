file(REMOVE_RECURSE
  "../bench/fig09_rclike_sweep"
  "../bench/fig09_rclike_sweep.pdb"
  "CMakeFiles/fig09_rclike_sweep.dir/fig09_rclike_sweep.cc.o"
  "CMakeFiles/fig09_rclike_sweep.dir/fig09_rclike_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_rclike_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
