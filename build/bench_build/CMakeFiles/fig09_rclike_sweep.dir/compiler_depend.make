# Empty compiler generated dependencies file for fig09_rclike_sweep.
# This may be replaced when dependencies are built.
