# Empty dependencies file for fig08_nsigma_sweep.
# This may be replaced when dependencies are built.
