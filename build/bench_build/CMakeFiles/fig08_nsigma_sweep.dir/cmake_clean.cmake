file(REMOVE_RECURSE
  "../bench/fig08_nsigma_sweep"
  "../bench/fig08_nsigma_sweep.pdb"
  "CMakeFiles/fig08_nsigma_sweep.dir/fig08_nsigma_sweep.cc.o"
  "CMakeFiles/fig08_nsigma_sweep.dir/fig08_nsigma_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_nsigma_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
