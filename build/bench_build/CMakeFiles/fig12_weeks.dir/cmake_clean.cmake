file(REMOVE_RECURSE
  "../bench/fig12_weeks"
  "../bench/fig12_weeks.pdb"
  "CMakeFiles/fig12_weeks.dir/fig12_weeks.cc.o"
  "CMakeFiles/fig12_weeks.dir/fig12_weeks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_weeks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
