# Empty dependencies file for fig12_weeks.
# This may be replaced when dependencies are built.
