file(REMOVE_RECURSE
  "../bench/perf_microbench"
  "../bench/perf_microbench.pdb"
  "CMakeFiles/perf_microbench.dir/perf_microbench.cc.o"
  "CMakeFiles/perf_microbench.dir/perf_microbench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
