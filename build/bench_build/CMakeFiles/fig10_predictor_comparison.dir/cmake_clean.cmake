file(REMOVE_RECURSE
  "../bench/fig10_predictor_comparison"
  "../bench/fig10_predictor_comparison.pdb"
  "CMakeFiles/fig10_predictor_comparison.dir/fig10_predictor_comparison.cc.o"
  "CMakeFiles/fig10_predictor_comparison.dir/fig10_predictor_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_predictor_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
