# Empty dependencies file for fig10_predictor_comparison.
# This may be replaced when dependencies are built.
