# Empty dependencies file for fig04_submission_rate.
# This may be replaced when dependencies are built.
