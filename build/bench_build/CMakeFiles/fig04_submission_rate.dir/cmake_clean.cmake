file(REMOVE_RECURSE
  "../bench/fig04_submission_rate"
  "../bench/fig04_submission_rate.pdb"
  "CMakeFiles/fig04_submission_rate.dir/fig04_submission_rate.cc.o"
  "CMakeFiles/fig04_submission_rate.dir/fig04_submission_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_submission_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
