file(REMOVE_RECURSE
  "../bench/fig07_trace_analysis"
  "../bench/fig07_trace_analysis.pdb"
  "CMakeFiles/fig07_trace_analysis.dir/fig07_trace_analysis.cc.o"
  "CMakeFiles/fig07_trace_analysis.dir/fig07_trace_analysis.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
