# Empty compiler generated dependencies file for fig07_trace_analysis.
# This may be replaced when dependencies are built.
