# Empty compiler generated dependencies file for fig01_pooling.
# This may be replaced when dependencies are built.
