file(REMOVE_RECURSE
  "../bench/fig01_pooling"
  "../bench/fig01_pooling.pdb"
  "CMakeFiles/fig01_pooling.dir/fig01_pooling.cc.o"
  "CMakeFiles/fig01_pooling.dir/fig01_pooling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
