file(REMOVE_RECURSE
  "../bench/fig11_cells"
  "../bench/fig11_cells.pdb"
  "CMakeFiles/fig11_cells.dir/fig11_cells.cc.o"
  "CMakeFiles/fig11_cells.dir/fig11_cells.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
