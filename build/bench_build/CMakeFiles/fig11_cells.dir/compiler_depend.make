# Empty compiler generated dependencies file for fig11_cells.
# This may be replaced when dependencies are built.
