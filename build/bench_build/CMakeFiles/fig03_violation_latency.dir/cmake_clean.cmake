file(REMOVE_RECURSE
  "../bench/fig03_violation_latency"
  "../bench/fig03_violation_latency.pdb"
  "CMakeFiles/fig03_violation_latency.dir/fig03_violation_latency.cc.o"
  "CMakeFiles/fig03_violation_latency.dir/fig03_violation_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_violation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
