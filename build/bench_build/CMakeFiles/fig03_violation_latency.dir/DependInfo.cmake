
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_violation_latency.cc" "bench_build/CMakeFiles/fig03_violation_latency.dir/fig03_violation_latency.cc.o" "gcc" "bench_build/CMakeFiles/fig03_violation_latency.dir/fig03_violation_latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_build/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
