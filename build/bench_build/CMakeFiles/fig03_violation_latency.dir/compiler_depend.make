# Empty compiler generated dependencies file for fig03_violation_latency.
# This may be replaced when dependencies are built.
