file(REMOVE_RECURSE
  "../bench/fig13_fig14_production_ab"
  "../bench/fig13_fig14_production_ab.pdb"
  "CMakeFiles/fig13_fig14_production_ab.dir/fig13_fig14_production_ab.cc.o"
  "CMakeFiles/fig13_fig14_production_ab.dir/fig13_fig14_production_ab.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fig14_production_ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
