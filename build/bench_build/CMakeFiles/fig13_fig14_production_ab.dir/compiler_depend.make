# Empty compiler generated dependencies file for fig13_fig14_production_ab.
# This may be replaced when dependencies are built.
