file(REMOVE_RECURSE
  "../bench/fig06_percentile_peak"
  "../bench/fig06_percentile_peak.pdb"
  "CMakeFiles/fig06_percentile_peak.dir/fig06_percentile_peak.cc.o"
  "CMakeFiles/fig06_percentile_peak.dir/fig06_percentile_peak.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_percentile_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
