# Empty dependencies file for fig06_percentile_peak.
# This may be replaced when dependencies are built.
