file(REMOVE_RECURSE
  "CMakeFiles/crf.dir/crf_cli.cc.o"
  "CMakeFiles/crf.dir/crf_cli.cc.o.d"
  "crf"
  "crf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
