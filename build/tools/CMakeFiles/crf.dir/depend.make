# Empty dependencies file for crf.
# This may be replaced when dependencies are built.
