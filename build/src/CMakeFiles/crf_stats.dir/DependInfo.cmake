
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crf/stats/correlation.cc" "src/CMakeFiles/crf_stats.dir/crf/stats/correlation.cc.o" "gcc" "src/CMakeFiles/crf_stats.dir/crf/stats/correlation.cc.o.d"
  "/root/repo/src/crf/stats/ecdf.cc" "src/CMakeFiles/crf_stats.dir/crf/stats/ecdf.cc.o" "gcc" "src/CMakeFiles/crf_stats.dir/crf/stats/ecdf.cc.o.d"
  "/root/repo/src/crf/stats/histogram.cc" "src/CMakeFiles/crf_stats.dir/crf/stats/histogram.cc.o" "gcc" "src/CMakeFiles/crf_stats.dir/crf/stats/histogram.cc.o.d"
  "/root/repo/src/crf/stats/p2_quantile.cc" "src/CMakeFiles/crf_stats.dir/crf/stats/p2_quantile.cc.o" "gcc" "src/CMakeFiles/crf_stats.dir/crf/stats/p2_quantile.cc.o.d"
  "/root/repo/src/crf/stats/percentile.cc" "src/CMakeFiles/crf_stats.dir/crf/stats/percentile.cc.o" "gcc" "src/CMakeFiles/crf_stats.dir/crf/stats/percentile.cc.o.d"
  "/root/repo/src/crf/stats/running_stats.cc" "src/CMakeFiles/crf_stats.dir/crf/stats/running_stats.cc.o" "gcc" "src/CMakeFiles/crf_stats.dir/crf/stats/running_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
