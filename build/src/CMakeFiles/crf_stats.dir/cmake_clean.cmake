file(REMOVE_RECURSE
  "CMakeFiles/crf_stats.dir/crf/stats/correlation.cc.o"
  "CMakeFiles/crf_stats.dir/crf/stats/correlation.cc.o.d"
  "CMakeFiles/crf_stats.dir/crf/stats/ecdf.cc.o"
  "CMakeFiles/crf_stats.dir/crf/stats/ecdf.cc.o.d"
  "CMakeFiles/crf_stats.dir/crf/stats/histogram.cc.o"
  "CMakeFiles/crf_stats.dir/crf/stats/histogram.cc.o.d"
  "CMakeFiles/crf_stats.dir/crf/stats/p2_quantile.cc.o"
  "CMakeFiles/crf_stats.dir/crf/stats/p2_quantile.cc.o.d"
  "CMakeFiles/crf_stats.dir/crf/stats/percentile.cc.o"
  "CMakeFiles/crf_stats.dir/crf/stats/percentile.cc.o.d"
  "CMakeFiles/crf_stats.dir/crf/stats/running_stats.cc.o"
  "CMakeFiles/crf_stats.dir/crf/stats/running_stats.cc.o.d"
  "libcrf_stats.a"
  "libcrf_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crf_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
