file(REMOVE_RECURSE
  "libcrf_stats.a"
)
