# Empty compiler generated dependencies file for crf_stats.
# This may be replaced when dependencies are built.
