file(REMOVE_RECURSE
  "CMakeFiles/crf_core.dir/crf/core/autopilot_predictor.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/autopilot_predictor.cc.o.d"
  "CMakeFiles/crf_core.dir/crf/core/borg_default_predictor.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/borg_default_predictor.cc.o.d"
  "CMakeFiles/crf_core.dir/crf/core/limit_sum_predictor.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/limit_sum_predictor.cc.o.d"
  "CMakeFiles/crf_core.dir/crf/core/max_predictor.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/max_predictor.cc.o.d"
  "CMakeFiles/crf_core.dir/crf/core/n_sigma_predictor.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/n_sigma_predictor.cc.o.d"
  "CMakeFiles/crf_core.dir/crf/core/oracle.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/oracle.cc.o.d"
  "CMakeFiles/crf_core.dir/crf/core/predictor.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/predictor.cc.o.d"
  "CMakeFiles/crf_core.dir/crf/core/predictor_factory.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/predictor_factory.cc.o.d"
  "CMakeFiles/crf_core.dir/crf/core/rc_like_predictor.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/rc_like_predictor.cc.o.d"
  "CMakeFiles/crf_core.dir/crf/core/spec_parser.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/spec_parser.cc.o.d"
  "CMakeFiles/crf_core.dir/crf/core/task_history.cc.o"
  "CMakeFiles/crf_core.dir/crf/core/task_history.cc.o.d"
  "libcrf_core.a"
  "libcrf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
