file(REMOVE_RECURSE
  "libcrf_core.a"
)
