
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crf/core/autopilot_predictor.cc" "src/CMakeFiles/crf_core.dir/crf/core/autopilot_predictor.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/autopilot_predictor.cc.o.d"
  "/root/repo/src/crf/core/borg_default_predictor.cc" "src/CMakeFiles/crf_core.dir/crf/core/borg_default_predictor.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/borg_default_predictor.cc.o.d"
  "/root/repo/src/crf/core/limit_sum_predictor.cc" "src/CMakeFiles/crf_core.dir/crf/core/limit_sum_predictor.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/limit_sum_predictor.cc.o.d"
  "/root/repo/src/crf/core/max_predictor.cc" "src/CMakeFiles/crf_core.dir/crf/core/max_predictor.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/max_predictor.cc.o.d"
  "/root/repo/src/crf/core/n_sigma_predictor.cc" "src/CMakeFiles/crf_core.dir/crf/core/n_sigma_predictor.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/n_sigma_predictor.cc.o.d"
  "/root/repo/src/crf/core/oracle.cc" "src/CMakeFiles/crf_core.dir/crf/core/oracle.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/oracle.cc.o.d"
  "/root/repo/src/crf/core/predictor.cc" "src/CMakeFiles/crf_core.dir/crf/core/predictor.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/predictor.cc.o.d"
  "/root/repo/src/crf/core/predictor_factory.cc" "src/CMakeFiles/crf_core.dir/crf/core/predictor_factory.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/predictor_factory.cc.o.d"
  "/root/repo/src/crf/core/rc_like_predictor.cc" "src/CMakeFiles/crf_core.dir/crf/core/rc_like_predictor.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/rc_like_predictor.cc.o.d"
  "/root/repo/src/crf/core/spec_parser.cc" "src/CMakeFiles/crf_core.dir/crf/core/spec_parser.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/spec_parser.cc.o.d"
  "/root/repo/src/crf/core/task_history.cc" "src/CMakeFiles/crf_core.dir/crf/core/task_history.cc.o" "gcc" "src/CMakeFiles/crf_core.dir/crf/core/task_history.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
