# Empty dependencies file for crf_core.
# This may be replaced when dependencies are built.
