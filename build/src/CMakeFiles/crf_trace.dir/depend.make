# Empty dependencies file for crf_trace.
# This may be replaced when dependencies are built.
