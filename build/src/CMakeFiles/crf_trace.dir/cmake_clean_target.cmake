file(REMOVE_RECURSE
  "libcrf_trace.a"
)
