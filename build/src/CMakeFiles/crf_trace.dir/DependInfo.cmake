
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crf/trace/cell_profile.cc" "src/CMakeFiles/crf_trace.dir/crf/trace/cell_profile.cc.o" "gcc" "src/CMakeFiles/crf_trace.dir/crf/trace/cell_profile.cc.o.d"
  "/root/repo/src/crf/trace/generator.cc" "src/CMakeFiles/crf_trace.dir/crf/trace/generator.cc.o" "gcc" "src/CMakeFiles/crf_trace.dir/crf/trace/generator.cc.o.d"
  "/root/repo/src/crf/trace/job_sampler.cc" "src/CMakeFiles/crf_trace.dir/crf/trace/job_sampler.cc.o" "gcc" "src/CMakeFiles/crf_trace.dir/crf/trace/job_sampler.cc.o.d"
  "/root/repo/src/crf/trace/trace.cc" "src/CMakeFiles/crf_trace.dir/crf/trace/trace.cc.o" "gcc" "src/CMakeFiles/crf_trace.dir/crf/trace/trace.cc.o.d"
  "/root/repo/src/crf/trace/trace_io.cc" "src/CMakeFiles/crf_trace.dir/crf/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/crf_trace.dir/crf/trace/trace_io.cc.o.d"
  "/root/repo/src/crf/trace/trace_stats.cc" "src/CMakeFiles/crf_trace.dir/crf/trace/trace_stats.cc.o" "gcc" "src/CMakeFiles/crf_trace.dir/crf/trace/trace_stats.cc.o.d"
  "/root/repo/src/crf/trace/workload_model.cc" "src/CMakeFiles/crf_trace.dir/crf/trace/workload_model.cc.o" "gcc" "src/CMakeFiles/crf_trace.dir/crf/trace/workload_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
