file(REMOVE_RECURSE
  "CMakeFiles/crf_trace.dir/crf/trace/cell_profile.cc.o"
  "CMakeFiles/crf_trace.dir/crf/trace/cell_profile.cc.o.d"
  "CMakeFiles/crf_trace.dir/crf/trace/generator.cc.o"
  "CMakeFiles/crf_trace.dir/crf/trace/generator.cc.o.d"
  "CMakeFiles/crf_trace.dir/crf/trace/job_sampler.cc.o"
  "CMakeFiles/crf_trace.dir/crf/trace/job_sampler.cc.o.d"
  "CMakeFiles/crf_trace.dir/crf/trace/trace.cc.o"
  "CMakeFiles/crf_trace.dir/crf/trace/trace.cc.o.d"
  "CMakeFiles/crf_trace.dir/crf/trace/trace_io.cc.o"
  "CMakeFiles/crf_trace.dir/crf/trace/trace_io.cc.o.d"
  "CMakeFiles/crf_trace.dir/crf/trace/trace_stats.cc.o"
  "CMakeFiles/crf_trace.dir/crf/trace/trace_stats.cc.o.d"
  "CMakeFiles/crf_trace.dir/crf/trace/workload_model.cc.o"
  "CMakeFiles/crf_trace.dir/crf/trace/workload_model.cc.o.d"
  "libcrf_trace.a"
  "libcrf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
