file(REMOVE_RECURSE
  "CMakeFiles/crf_util.dir/crf/util/check.cc.o"
  "CMakeFiles/crf_util.dir/crf/util/check.cc.o.d"
  "CMakeFiles/crf_util.dir/crf/util/csv.cc.o"
  "CMakeFiles/crf_util.dir/crf/util/csv.cc.o.d"
  "CMakeFiles/crf_util.dir/crf/util/env.cc.o"
  "CMakeFiles/crf_util.dir/crf/util/env.cc.o.d"
  "CMakeFiles/crf_util.dir/crf/util/rng.cc.o"
  "CMakeFiles/crf_util.dir/crf/util/rng.cc.o.d"
  "CMakeFiles/crf_util.dir/crf/util/table.cc.o"
  "CMakeFiles/crf_util.dir/crf/util/table.cc.o.d"
  "CMakeFiles/crf_util.dir/crf/util/thread_pool.cc.o"
  "CMakeFiles/crf_util.dir/crf/util/thread_pool.cc.o.d"
  "libcrf_util.a"
  "libcrf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
