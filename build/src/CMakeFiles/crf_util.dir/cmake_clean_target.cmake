file(REMOVE_RECURSE
  "libcrf_util.a"
)
