# Empty dependencies file for crf_util.
# This may be replaced when dependencies are built.
