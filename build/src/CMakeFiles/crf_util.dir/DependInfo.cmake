
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crf/util/check.cc" "src/CMakeFiles/crf_util.dir/crf/util/check.cc.o" "gcc" "src/CMakeFiles/crf_util.dir/crf/util/check.cc.o.d"
  "/root/repo/src/crf/util/csv.cc" "src/CMakeFiles/crf_util.dir/crf/util/csv.cc.o" "gcc" "src/CMakeFiles/crf_util.dir/crf/util/csv.cc.o.d"
  "/root/repo/src/crf/util/env.cc" "src/CMakeFiles/crf_util.dir/crf/util/env.cc.o" "gcc" "src/CMakeFiles/crf_util.dir/crf/util/env.cc.o.d"
  "/root/repo/src/crf/util/rng.cc" "src/CMakeFiles/crf_util.dir/crf/util/rng.cc.o" "gcc" "src/CMakeFiles/crf_util.dir/crf/util/rng.cc.o.d"
  "/root/repo/src/crf/util/table.cc" "src/CMakeFiles/crf_util.dir/crf/util/table.cc.o" "gcc" "src/CMakeFiles/crf_util.dir/crf/util/table.cc.o.d"
  "/root/repo/src/crf/util/thread_pool.cc" "src/CMakeFiles/crf_util.dir/crf/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/crf_util.dir/crf/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
