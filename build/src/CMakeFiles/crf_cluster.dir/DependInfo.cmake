
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crf/cluster/ab_experiment.cc" "src/CMakeFiles/crf_cluster.dir/crf/cluster/ab_experiment.cc.o" "gcc" "src/CMakeFiles/crf_cluster.dir/crf/cluster/ab_experiment.cc.o.d"
  "/root/repo/src/crf/cluster/cell_sim.cc" "src/CMakeFiles/crf_cluster.dir/crf/cluster/cell_sim.cc.o" "gcc" "src/CMakeFiles/crf_cluster.dir/crf/cluster/cell_sim.cc.o.d"
  "/root/repo/src/crf/cluster/latency_model.cc" "src/CMakeFiles/crf_cluster.dir/crf/cluster/latency_model.cc.o" "gcc" "src/CMakeFiles/crf_cluster.dir/crf/cluster/latency_model.cc.o.d"
  "/root/repo/src/crf/cluster/machine.cc" "src/CMakeFiles/crf_cluster.dir/crf/cluster/machine.cc.o" "gcc" "src/CMakeFiles/crf_cluster.dir/crf/cluster/machine.cc.o.d"
  "/root/repo/src/crf/cluster/scheduler.cc" "src/CMakeFiles/crf_cluster.dir/crf/cluster/scheduler.cc.o" "gcc" "src/CMakeFiles/crf_cluster.dir/crf/cluster/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
