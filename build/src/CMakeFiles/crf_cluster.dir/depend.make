# Empty dependencies file for crf_cluster.
# This may be replaced when dependencies are built.
