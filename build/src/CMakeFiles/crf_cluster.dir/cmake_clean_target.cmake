file(REMOVE_RECURSE
  "libcrf_cluster.a"
)
