file(REMOVE_RECURSE
  "CMakeFiles/crf_cluster.dir/crf/cluster/ab_experiment.cc.o"
  "CMakeFiles/crf_cluster.dir/crf/cluster/ab_experiment.cc.o.d"
  "CMakeFiles/crf_cluster.dir/crf/cluster/cell_sim.cc.o"
  "CMakeFiles/crf_cluster.dir/crf/cluster/cell_sim.cc.o.d"
  "CMakeFiles/crf_cluster.dir/crf/cluster/latency_model.cc.o"
  "CMakeFiles/crf_cluster.dir/crf/cluster/latency_model.cc.o.d"
  "CMakeFiles/crf_cluster.dir/crf/cluster/machine.cc.o"
  "CMakeFiles/crf_cluster.dir/crf/cluster/machine.cc.o.d"
  "CMakeFiles/crf_cluster.dir/crf/cluster/scheduler.cc.o"
  "CMakeFiles/crf_cluster.dir/crf/cluster/scheduler.cc.o.d"
  "libcrf_cluster.a"
  "libcrf_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crf_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
