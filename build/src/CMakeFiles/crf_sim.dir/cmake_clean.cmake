file(REMOVE_RECURSE
  "CMakeFiles/crf_sim.dir/crf/sim/metrics.cc.o"
  "CMakeFiles/crf_sim.dir/crf/sim/metrics.cc.o.d"
  "CMakeFiles/crf_sim.dir/crf/sim/simulator.cc.o"
  "CMakeFiles/crf_sim.dir/crf/sim/simulator.cc.o.d"
  "libcrf_sim.a"
  "libcrf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
