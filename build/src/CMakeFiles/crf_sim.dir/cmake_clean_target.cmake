file(REMOVE_RECURSE
  "libcrf_sim.a"
)
