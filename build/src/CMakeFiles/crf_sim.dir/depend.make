# Empty dependencies file for crf_sim.
# This may be replaced when dependencies are built.
